package health

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"reramtest/internal/models"
	"reramtest/internal/monitor"
	"reramtest/internal/nn"
	"reramtest/internal/repair"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
	"reramtest/internal/testgen"
)

// testRuntime builds a runtime over a tiny MLP monitor with no real backoff
// sleeping.
func testRuntime(t *testing.T, cfg Config) (*Runtime, *nn.Network) {
	t.Helper()
	net := models.MLP(rng.New(1), 16, []int{12}, 5)
	patterns := &testgen.PatternSet{
		Name: "t", Method: "plain",
		X:      tensor.RandUniform(rng.New(2), 0, 1, 8, 16),
		Labels: make([]int, 8),
	}
	mon := monitor.MustNew(net, patterns, nil, monitor.DefaultConfig())
	cfg.Sleep = func(time.Duration) {}
	rt, err := New(mon, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return rt, net
}

// shiftInfer fabricates confidences at an exact distance from golden by
// running the clean model and shifting every confidence.
func shiftInfer(net *nn.Network, dist float64) monitor.Infer {
	return func(x *tensor.Tensor) *tensor.Tensor {
		probs := nn.Softmax(net.Forward(x))
		probs.Apply(func(v float64) float64 { return v + dist + 1e-9 })
		return probs
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.EscalateAfter = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("EscalateAfter=0 accepted")
	}
	bad = DefaultConfig()
	bad.VerifyRounds = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("VerifyRounds=0 accepted")
	}
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Fatal("nil monitor accepted")
	}
}

func TestHysteresisSuppressesTransientFlap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EscalateAfter = 2
	rt, net := testRuntime(t, cfg)

	clean := shiftInfer(net, 0)
	noisy := shiftInfer(net, 0.04) // raw Degraded for one round

	r1 := rt.Check(clean)
	r2 := rt.Check(noisy) // single-round glitch
	r3 := rt.Check(clean)
	if r2.Raw != monitor.Degraded {
		t.Fatalf("glitch round raw=%s, want DEGRADED (the raw monitor flaps here)", r2.Raw)
	}
	for i, r := range []Round{r1, r2, r3} {
		if r.Confirmed != monitor.Healthy {
			t.Fatalf("round %d confirmed=%s, want HEALTHY (debounce must absorb 1-round glitch)", i+1, r.Confirmed)
		}
	}
	if rt.StatusFlips() != 0 {
		t.Fatalf("confirmed status flapped %d times on a transient", rt.StatusFlips())
	}
}

func TestHysteresisConfirmsPersistentDamage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EscalateAfter = 2
	rt, net := testRuntime(t, cfg)
	bad := shiftInfer(net, 0.12) // raw Critical

	r1 := rt.Check(bad)
	if r1.Confirmed != monitor.Healthy {
		t.Fatalf("confirmed after 1 round: %s", r1.Confirmed)
	}
	r2 := rt.Check(bad)
	if r2.Confirmed != monitor.Critical || !r2.Changed {
		t.Fatalf("persistent critical not confirmed after K rounds: %+v", r2)
	}
}

func TestHysteresisOscillatingElevatedEvidence(t *testing.T) {
	// raw alternating Impaired/Critical must still escalate (to the level
	// every round agreed on), not reset the streak forever
	cfg := DefaultConfig()
	cfg.EscalateAfter = 2
	rt, net := testRuntime(t, cfg)
	if rt.Check(shiftInfer(net, 0.12)).Changed { // Critical
		t.Fatal("escalated after one round")
	}
	r2 := rt.Check(shiftInfer(net, 0.07)) // Impaired
	if r2.Confirmed != monitor.Impaired {
		t.Fatalf("oscillating elevated evidence confirmed %s, want IMPAIRED", r2.Confirmed)
	}
}

func TestDeescalationIsSlower(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EscalateAfter = 2
	cfg.DeescalateAfter = 3
	rt, net := testRuntime(t, cfg)
	bad, clean := shiftInfer(net, 0.12), shiftInfer(net, 0)
	rt.Check(bad)
	rt.Check(bad) // confirmed Critical
	if rt.Confirmed() != monitor.Critical {
		t.Fatal("setup failed")
	}
	rt.Check(clean)
	rt.Check(clean)
	if rt.Confirmed() != monitor.Critical {
		t.Fatalf("de-escalated after only 2 clean rounds")
	}
	r := rt.Check(clean)
	if r.Confirmed != monitor.Healthy {
		t.Fatalf("not de-escalated after 3 clean rounds: %s", r.Confirmed)
	}
}

func TestPoisonedInferNaN(t *testing.T) {
	rt, net := testRuntime(t, DefaultConfig())
	nan := func(x *tensor.Tensor) *tensor.Tensor {
		probs := nn.Softmax(net.Forward(x))
		probs.Data()[3] = math.NaN()
		return probs
	}
	r := rt.Check(nan)
	if r.ReadoutOK {
		t.Fatal("NaN readout accepted")
	}
	if !r.SensorFault || r.Status() == monitor.Healthy {
		t.Fatalf("poisoned readout round: %+v (status %s)", r, r.Status())
	}
	if r.Rejected != 1+DefaultConfig().MaxReadRetries {
		t.Fatalf("rejected %d attempts, want %d", r.Rejected, 1+DefaultConfig().MaxReadRetries)
	}
}

func TestPoisonedInferShapeAndNil(t *testing.T) {
	rt, _ := testRuntime(t, DefaultConfig())
	r := rt.Check(func(x *tensor.Tensor) *tensor.Tensor { return tensor.New(2, 2) })
	if r.ReadoutOK || r.Status() == monitor.Healthy {
		t.Fatalf("wrong-shape readout: %+v", r)
	}
	r = rt.Check(func(x *tensor.Tensor) *tensor.Tensor { return nil })
	if r.ReadoutOK || r.Status() == monitor.Healthy {
		t.Fatalf("nil readout: %+v", r)
	}
}

func TestPoisonedInferPanicRecovered(t *testing.T) {
	rt, _ := testRuntime(t, DefaultConfig())
	r := rt.Check(func(x *tensor.Tensor) *tensor.Tensor { panic("dead sensor") })
	if r.ReadoutOK || r.Status() == monitor.Healthy {
		t.Fatalf("panicking readout: %+v", r)
	}
	_, panics := rt.RejectedReadouts()
	if panics != 1+DefaultConfig().MaxReadRetries {
		t.Fatalf("recovered %d panics, want %d", panics, 1+DefaultConfig().MaxReadRetries)
	}
}

func TestRetryRecoversFlakyReadout(t *testing.T) {
	rt, net := testRuntime(t, DefaultConfig())
	calls := 0
	flaky := func(x *tensor.Tensor) *tensor.Tensor {
		calls++
		if calls == 1 {
			panic("transient")
		}
		return nn.Softmax(net.Forward(x))
	}
	r := rt.Check(flaky)
	if !r.ReadoutOK || r.Rejected != 1 {
		t.Fatalf("flaky readout not recovered by retry: %+v", r)
	}
	if r.Raw != monitor.Healthy {
		t.Fatalf("recovered readout classified %s", r.Raw)
	}
}

func TestBackoffIsBoundedExponential(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxReadRetries = 4
	cfg.BackoffBase = 10 * time.Millisecond
	cfg.BackoffMax = 25 * time.Millisecond
	rt, _ := testRuntime(t, cfg)
	var slept []time.Duration
	rt.cfg.Sleep = func(d time.Duration) { slept = append(slept, d) }
	rt.Check(func(x *tensor.Tensor) *tensor.Tensor { return nil })
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 25 * time.Millisecond, 25 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept %v, want %v", slept, want)
		}
	}
}

func TestHistoryRingBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxHistory = 4
	rt, net := testRuntime(t, cfg)
	clean := shiftInfer(net, 0)
	for i := 0; i < 10; i++ {
		rt.Check(clean)
	}
	hist := rt.History()
	if len(hist) != 4 {
		t.Fatalf("history kept %d rounds, want 4", len(hist))
	}
	for i, r := range hist {
		if r.Seq != 7+i {
			t.Fatalf("history out of order: %+v", hist)
		}
	}
}

// stepRepairer simulates hardware whose damage only the given action level
// can clear.
type stepRepairer struct {
	needs   repair.Action
	applied []repair.Action
	fixed   bool
}

func (s *stepRepairer) Apply(a repair.Action) (*nn.Network, error) {
	s.applied = append(s.applied, a)
	if a >= s.needs {
		s.fixed = true
	}
	return nil, nil
}

func TestSuperviseEscalatesUntilVerified(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EscalateAfter = 1 // confirm immediately: this test targets the repair loop
	rt, net := testRuntime(t, cfg)
	sr := &stepRepairer{needs: repair.Retrain}
	infer := func(x *tensor.Tensor) *tensor.Tensor {
		d := 0.04 // Degraded until fixed
		if sr.fixed {
			d = 0
		}
		probs := nn.Softmax(net.Forward(x))
		probs.Apply(func(v float64) float64 { return v + d + 1e-9 })
		return probs
	}
	ep := rt.Supervise(infer, sr)
	if !ep.Recovered || ep.GaveUp {
		t.Fatalf("episode did not recover: %s", ep)
	}
	wantLadder := []repair.Action{repair.Reprogram, repair.Retrain}
	if len(sr.applied) != len(wantLadder) {
		t.Fatalf("applied %v, want %v", sr.applied, wantLadder)
	}
	for i := range wantLadder {
		if sr.applied[i] != wantLadder[i] {
			t.Fatalf("applied %v, want %v", sr.applied, wantLadder)
		}
	}
	if rt.Confirmed() != monitor.Healthy {
		t.Fatalf("confirmed %s after verified repair", rt.Confirmed())
	}
}

func TestSuperviseGivesUpGracefully(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EscalateAfter = 1
	cfg.MaxRepairAttempts = 3
	rt, net := testRuntime(t, cfg)
	bad := shiftInfer(net, 0.12) // Critical, unrepairable
	sr := &stepRepairer{needs: repair.Action(99)}
	ep := rt.Supervise(bad, sr)
	if ep.Recovered || !ep.GaveUp {
		t.Fatalf("unrepairable damage not given up: %s", ep)
	}
	if len(ep.Attempts) == 0 || ep.Recommendation == "none" {
		t.Fatalf("give-up episode carries no escalation advice: %s", ep)
	}
	if rt.Confirmed() == monitor.Healthy {
		t.Fatal("gave up but reports Healthy")
	}
}

func TestSuperviseRepairApplyError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EscalateAfter = 1
	cfg.MaxRepairAttempts = 2
	rt, net := testRuntime(t, cfg)
	bad := shiftInfer(net, 0.04)
	failing := RepairerFunc(func(a repair.Action) (*nn.Network, error) {
		return nil, errors.New("actuator offline")
	})
	ep := rt.Supervise(bad, failing)
	if !ep.GaveUp || len(ep.Attempts) != 2 {
		t.Fatalf("failing repairer episode: %s", ep)
	}
	if ep.Attempts[0].ApplyErr == nil {
		t.Fatal("apply error not recorded")
	}
}

func TestCheckCtxCanceledSkipsBackoffSchedule(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxReadRetries = 5
	rt, _ := testRuntime(t, cfg)
	sleeps, attempts := 0, 0
	rt.cfg.Sleep = func(time.Duration) { sleeps++ }
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := rt.CheckCtx(ctx, func(x *tensor.Tensor) *tensor.Tensor { attempts++; return nil })
	if attempts != 1 {
		t.Fatalf("canceled ctx ran %d attempts, want exactly the first", attempts)
	}
	if sleeps != 0 {
		t.Fatalf("canceled ctx still slept %d times", sleeps)
	}
	if !r.SensorFault || !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("aborted round must be a sensor fault wrapping ctx.Err(): %+v", r)
	}
	if r.Status() == monitor.Healthy {
		t.Fatalf("aborted readout round reports %s", r.Status())
	}
}

func TestCheckCtxCancelCutsRealBackoffSleep(t *testing.T) {
	net := models.MLP(rng.New(1), 16, []int{12}, 5)
	patterns := &testgen.PatternSet{
		Name: "t", Method: "plain",
		X:      tensor.RandUniform(rng.New(2), 0, 1, 8, 16),
		Labels: make([]int, 8),
	}
	cfg := DefaultConfig()
	cfg.BackoffBase = 30 * time.Second // would dominate the test if not cut
	cfg.BackoffMax = 30 * time.Second
	rt, err := New(monitor.MustNew(net, patterns, nil, monitor.DefaultConfig()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	r := rt.CheckCtx(ctx, func(x *tensor.Tensor) *tensor.Tensor { return nil })
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation did not cut the 30s backoff sleep: took %v", elapsed)
	}
	if !errors.Is(r.Err, context.DeadlineExceeded) {
		t.Fatalf("round error %v does not wrap the deadline", r.Err)
	}
}

func TestSuperviseCtxCanceledStartsNoRepair(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EscalateAfter = 1
	rt, net := testRuntime(t, cfg)
	rt.Check(shiftInfer(net, 0.12))
	if rt.Confirmed() != monitor.Critical {
		t.Fatalf("setup: confirmed %s", rt.Confirmed())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sr := &stepRepairer{needs: repair.Reprogram}
	ep := rt.SuperviseCtx(ctx, shiftInfer(net, 0.12), sr)
	if len(sr.applied) != 0 {
		t.Fatalf("canceled episode still applied repairs: %v", sr.applied)
	}
	if ep.GaveUp {
		t.Fatalf("drain-time cancellation must not condemn the device: %s", ep)
	}
}

func TestSuperviseHealthyNoRepair(t *testing.T) {
	rt, net := testRuntime(t, DefaultConfig())
	sr := &stepRepairer{}
	ep := rt.Supervise(shiftInfer(net, 0), sr)
	if ep.Repaired() || len(sr.applied) != 0 {
		t.Fatalf("healthy device was repaired: %s", ep)
	}
}
