package monitor

import (
	"math"
	"strings"
	"testing"

	"reramtest/internal/detect"
	"reramtest/internal/faults"
	"reramtest/internal/models"
	"reramtest/internal/nn"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
	"reramtest/internal/testgen"
)

func testMonitor(t *testing.T, calib []CalibPoint) (*Monitor, *nn.Network) {
	t.Helper()
	net := models.MLP(rng.New(1), 16, []int{12}, 5)
	patterns := &testgen.PatternSet{
		Name: "t", Method: "plain",
		X:      tensor.RandUniform(rng.New(2), 0, 1, 8, 16),
		Labels: make([]int, 8),
	}
	return MustNew(net, patterns, calib, DefaultConfig()), net
}

func TestHealthyOnIdealModel(t *testing.T) {
	m, net := testMonitor(t, nil)
	rep := m.Check(NetworkInfer(net))
	if rep.Status != Healthy {
		t.Fatalf("ideal model reported %s", rep.Status)
	}
	if rep.AllDist != 0 || rep.TopDist != 0 {
		t.Fatalf("ideal model distances %v/%v", rep.AllDist, rep.TopDist)
	}
	if rep.EstAccuracy != -1 {
		t.Fatalf("no calibration but EstAccuracy=%v", rep.EstAccuracy)
	}
	if rep.Action != "none" {
		t.Fatalf("healthy action %q", rep.Action)
	}
}

func TestDegradationEscalatesStatus(t *testing.T) {
	m, net := testMonitor(t, nil)
	last := Healthy
	for _, sigma := range []float64{0.1, 0.5, 1.5, 3} {
		faulty := faults.MakeFaulty(net, faults.LogNormal{Sigma: sigma}, 7)
		rep := m.Check(NetworkInfer(faulty))
		if rep.Status < last {
			t.Fatalf("status regressed from %s to %s at σ=%v", last, rep.Status, sigma)
		}
		last = rep.Status
	}
	if last < Impaired {
		t.Fatalf("σ=3 corruption only reached %s", last)
	}
}

func TestStatusThresholds(t *testing.T) {
	cfg := DefaultConfig()
	m, _ := testMonitor(t, nil)
	cases := []struct {
		dist float64
		want Status
	}{
		{0.0, Healthy},
		{cfg.DegradedAt, Degraded},
		{cfg.ImpairedAt, Impaired},
		{cfg.CriticalAt, Critical},
		{0.5, Critical},
	}
	for _, c := range cases {
		// feed synthetic confidences whose mean |Δ| from golden equals
		// exactly c.dist (the monitor never renormalises, so a uniform
		// shift is fine for threshold testing)
		rep := m.Check(func(x *tensor.Tensor) *tensor.Tensor {
			probs := m.golden.Probs.Clone()
			// tiny epsilon absorbs float rounding in (v+d)−v at the
			// threshold boundary
			probs.Apply(func(v float64) float64 { return v + c.dist + 1e-9 })
			return probs
		})
		if rep.Status != c.want {
			t.Errorf("distance %v → %s, want %s", c.dist, rep.Status, c.want)
		}
	}
}

func TestEstimateAccuracyInterpolation(t *testing.T) {
	calib := []CalibPoint{
		{Distance: 0.10, Accuracy: 0.80}, // deliberately unsorted
		{Distance: 0.00, Accuracy: 0.99},
		{Distance: 0.05, Accuracy: 0.90},
	}
	m, _ := testMonitor(t, calib)
	// exact calibration points
	for _, c := range calib {
		if got := m.EstimateAccuracy(c.Distance); math.Abs(got-c.Accuracy) > 1e-12 {
			t.Errorf("EstimateAccuracy(%v)=%v, want %v", c.Distance, got, c.Accuracy)
		}
	}
	// midpoint interpolation
	if got := m.EstimateAccuracy(0.025); math.Abs(got-0.945) > 1e-12 {
		t.Errorf("midpoint estimate %v, want 0.945", got)
	}
	// clamping outside the calibrated range
	if got := m.EstimateAccuracy(-1); got != 0.99 {
		t.Errorf("below-range estimate %v", got)
	}
	if got := m.EstimateAccuracy(9); got != 0.80 {
		t.Errorf("above-range estimate %v", got)
	}
}

func TestHistoryAndTrend(t *testing.T) {
	m, net := testMonitor(t, nil)
	for _, sigma := range []float64{0.05, 0.3, 0.8} {
		faulty := faults.MakeFaulty(net, faults.LogNormal{Sigma: sigma}, 11)
		m.Check(NetworkInfer(faulty))
	}
	if len(m.History()) != 3 {
		t.Fatalf("history has %d entries", len(m.History()))
	}
	slope, summary := m.Trend()
	if slope <= 0 {
		t.Fatalf("monotone degradation has slope %v", slope)
	}
	if summary.N != 3 {
		t.Fatalf("trend summary over %d rounds", summary.N)
	}
	if m.History()[2].Round != 3 {
		t.Fatalf("round numbering wrong: %+v", m.History()[2])
	}
}

func TestReportString(t *testing.T) {
	m, net := testMonitor(t, []CalibPoint{{0, 0.99}, {0.5, 0.5}})
	faulty := faults.MakeFaulty(net, faults.LogNormal{Sigma: 2}, 13)
	rep := m.Check(NetworkInfer(faulty))
	s := rep.String()
	for _, want := range []string{"round 1", "status=", "estAcc="} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}

func TestStatusStringsAndActions(t *testing.T) {
	for s, wantName := range map[Status]string{
		Healthy: "HEALTHY", Degraded: "DEGRADED", Impaired: "IMPAIRED", Critical: "CRITICAL",
	} {
		if s.String() != wantName {
			t.Errorf("Status(%d).String()=%q", int(s), s.String())
		}
		if s.Action() == "" {
			t.Errorf("Status %s has empty action", s)
		}
	}
}

func TestDetectedFlagsPopulated(t *testing.T) {
	m, net := testMonitor(t, nil)
	faulty := faults.MakeFaulty(net, faults.LogNormal{Sigma: 2}, 17)
	rep := m.Check(NetworkInfer(faulty))
	if len(rep.Detected) != len(detect.AllCriteria) {
		t.Fatalf("report evaluates %d criteria, want %d", len(rep.Detected), len(detect.AllCriteria))
	}
	any := false
	for _, v := range rep.Detected {
		any = any || v
	}
	if !any {
		t.Fatal("massive corruption triggered no criterion")
	}
}

func TestPatternCount(t *testing.T) {
	m, _ := testMonitor(t, nil)
	if m.PatternCount() != 8 {
		t.Fatalf("PatternCount=%d", m.PatternCount())
	}
}
