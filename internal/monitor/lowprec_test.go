package monitor

import (
	"math"
	"testing"

	"reramtest/internal/tensor"
)

// TestNetworkInferAtTracksWeightMutation: the fast-tier Infer must keep
// NetworkInfer's contract — in-place weight changes through the network's
// Params are visible on the next probe — and stay close to the f64 readout.
func TestNetworkInferAtTracksWeightMutation(t *testing.T) {
	m, net := testMonitor(t, nil)
	ref := NetworkInfer(net)
	fast := NetworkInferAt(net, tensor.F32)

	x := m.golden.Patterns.X
	close := func(a, b *tensor.Tensor) bool {
		ad, bd := a.Data(), b.Data()
		for i := range ad {
			if math.Abs(ad[i]-bd[i]) > 1e-5 {
				return false
			}
		}
		return true
	}
	if !close(fast(x).Clone(), ref(x)) {
		t.Fatal("f32 probe too far from the f64 readout on the clean model")
	}

	before := fast(x).Clone()
	// drift the first weight tensor in place — the monitor's fault sweeps
	// mutate networks exactly like this
	net.Params()[0].Value.ScaleInPlace(0.5)
	after := fast(x).Clone()
	if after.Equal(before) {
		t.Fatal("f32 probe did not see the in-place weight mutation")
	}
	if !close(after, ref(x)) {
		t.Fatal("f32 probe diverged from the f64 readout after mutation")
	}

	// the monitor itself stays Healthy probing the clean model on the tier
	_, net2 := testMonitor(t, nil)
	m2, _ := testMonitor(t, nil)
	rep := m2.Check(NetworkInferAt(net2, tensor.F32))
	if rep.Status != Healthy {
		t.Fatalf("f32 self-check reported %s", rep.Status)
	}
}
