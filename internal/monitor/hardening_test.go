package monitor

import (
	"math"
	"testing"

	"reramtest/internal/models"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
	"reramtest/internal/testgen"
)

func TestConfigValidateRejectsBadThresholds(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.DegradedAt = 0 },
		func(c *Config) { c.ImpairedAt = -0.1 },
		func(c *Config) { c.CriticalAt = math.NaN() },
		func(c *Config) { c.DegradedAt = math.Inf(1) },
		func(c *Config) { c.DegradedAt, c.ImpairedAt = c.ImpairedAt, c.DegradedAt }, // not ascending
		func(c *Config) { c.ImpairedAt = c.CriticalAt },                             // not strict
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CriticalAt = cfg.DegradedAt
	net := models.MLP(rng.New(1), 16, []int{12}, 5)
	if _, err := New(net, patterns8x16(), nil, cfg); err == nil {
		t.Fatal("New accepted a non-ascending config")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid config")
		}
	}()
	MustNew(net, patterns8x16(), nil, cfg)
}

func patterns8x16() *testgen.PatternSet {
	return &testgen.PatternSet{
		Name: "t", Method: "plain",
		X:      tensor.RandUniform(rng.New(2), 0, 1, 8, 16),
		Labels: make([]int, 8),
	}
}

func TestHistoryRingEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxHistory = 4
	net := models.MLP(rng.New(1), 16, []int{12}, 5)
	m := MustNew(net, patterns8x16(), nil, cfg)
	for i := 0; i < 10; i++ {
		m.Check(NetworkInfer(net))
	}
	hist := m.History()
	if len(hist) != 4 {
		t.Fatalf("ring kept %d reports, want 4", len(hist))
	}
	for i, rep := range hist {
		if rep.Round != 7+i {
			t.Fatalf("ring out of chronological order: rounds %v", roundsOf(hist))
		}
	}
	if m.Rounds() != 10 {
		t.Fatalf("Rounds()=%d after 10 checks", m.Rounds())
	}
}

func TestHistoryUnboundedWhenNegative(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxHistory = -1
	net := models.MLP(rng.New(1), 16, []int{12}, 5)
	m := MustNew(net, patterns8x16(), nil, cfg)
	for i := 0; i < 20; i++ {
		m.Check(NetworkInfer(net))
	}
	if len(m.History()) != 20 {
		t.Fatalf("unbounded history kept %d reports", len(m.History()))
	}
}

func TestTrendDegenerateHistories(t *testing.T) {
	m, net := testMonitor(t, nil)

	// empty history
	slope, summary := m.Trend()
	if slope != 0 || summary.N != 0 {
		t.Fatalf("empty trend: slope=%v N=%d", slope, summary.N)
	}

	// single report: a one-point fit has no slope
	m.Check(NetworkInfer(net))
	slope, summary = m.Trend()
	if slope != 0 || summary.N != 1 {
		t.Fatalf("1-point trend: slope=%v N=%d", slope, summary.N)
	}
	if math.IsNaN(summary.Mean) {
		t.Fatal("1-point summary mean is NaN")
	}

	// two identical reports: zero slope, not NaN
	m.Check(NetworkInfer(net))
	slope, summary = m.Trend()
	if math.IsNaN(slope) || slope != 0 || summary.N != 2 {
		t.Fatalf("2-point flat trend: slope=%v N=%d", slope, summary.N)
	}
}

func TestNaNReadoutNeverHealthy(t *testing.T) {
	m, _ := testMonitor(t, nil)
	rep := m.Check(func(x *tensor.Tensor) *tensor.Tensor {
		probs := m.golden.Probs.Clone()
		probs.Data()[0] = math.NaN()
		return probs
	})
	if rep.Status == Healthy {
		t.Fatalf("single NaN confidence classified Healthy: %+v", rep)
	}
	if rep.NonFinite != 1 {
		t.Fatalf("NonFinite=%d, want 1", rep.NonFinite)
	}
	if math.IsNaN(rep.AllDist) {
		t.Fatal("AllDist propagated NaN instead of capping the poisoned entry")
	}
}

func TestAllNaNReadoutIsCritical(t *testing.T) {
	m, _ := testMonitor(t, nil)
	rep := m.Check(func(x *tensor.Tensor) *tensor.Tensor {
		probs := m.golden.Probs.Clone()
		probs.Apply(func(float64) float64 { return math.NaN() })
		return probs
	})
	if rep.Status != Critical {
		t.Fatalf("fully poisoned readout classified %s, want CRITICAL", rep.Status)
	}
}

func TestEstimateAccuracyNonFinite(t *testing.T) {
	calib := []CalibPoint{{Distance: 0, Accuracy: 0.99}, {Distance: 0.5, Accuracy: 0.4}}
	m, _ := testMonitor(t, calib)
	for _, d := range []float64{math.NaN(), math.Inf(1)} {
		if got := m.EstimateAccuracy(d); got != 0.4 {
			t.Errorf("EstimateAccuracy(%v)=%v, want the worst calibrated accuracy 0.4", d, got)
		}
	}
	if got := m.EstimateAccuracy(math.Inf(-1)); got != 0.99 {
		t.Errorf("EstimateAccuracy(-Inf)=%v, want clamp to best accuracy", got)
	}
}

func TestRecommissionTracksNewReference(t *testing.T) {
	m, _ := testMonitor(t, nil)
	other := models.MLP(rng.New(33), 16, []int{12}, 5)
	rep := m.Check(NetworkInfer(other))
	if rep.AllDist == 0 {
		t.Fatal("distinct model reads identical to the reference")
	}
	m.Recommission(other)
	rep = m.Check(NetworkInfer(other))
	if rep.Status != Healthy || rep.AllDist != 0 {
		t.Fatalf("after recommissioning, the new reference reports %+v", rep)
	}
	if m.Rounds() != 2 {
		t.Fatalf("recommissioning reset round numbering: %d", m.Rounds())
	}
}

func roundsOf(hist []Report) []int {
	out := make([]int, len(hist))
	for i, r := range hist {
		out[i] = r.Round
	}
	return out
}
