// Package monitor assembles the paper's pieces into the deployable artifact
// its title promises: a run-time health monitor for a ReRAM DNN accelerator.
// A Monitor owns a small pattern set and its golden confidences; each Check
// pushes the patterns through the (possibly degraded) accelerator, measures
// the confidence distance, classifies the health status, estimates the
// accuracy loss via a Fig.-8-style calibration curve, and recommends the
// cheapest adequate repair action (§I: different repair mechanisms suit
// different fault severities).
//
// Pattern choice matters for coverage. O-TP patterns have uniform golden
// confidences, so any fault that *also* drives outputs toward uniform — in
// particular pure multiplicative resistance drift, which shrinks every
// weight and collapses the logits — produces near-zero confidence distance
// on them: a structural blind spot of the SDC-A criterion on O-TP. C-TP
// patterns have peaked goldens and catch that fault class. Monitors guarding
// drift-prone devices should arm C-TP (or a C-TP + O-TP mix); O-TP remains
// the better accuracy estimator for bias-style faults (see cmd/monitor).
package monitor

import (
	"fmt"
	"sort"
	"strings"

	"reramtest/internal/detect"
	"reramtest/internal/nn"
	"reramtest/internal/stats"
	"reramtest/internal/tensor"
	"reramtest/internal/testgen"
)

// Status is the coarse health classification of the accelerator.
type Status int

// Health statuses in increasing severity.
const (
	// Healthy: confidence distance within the noise floor; no action.
	Healthy Status = iota
	// Degraded: measurable drift; accuracy loss small but non-zero.
	Degraded
	// Impaired: significant accuracy loss; on-device repair advised.
	Impaired
	// Critical: severe loss; device needs cloud retraining or remapping.
	Critical
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Healthy:
		return "HEALTHY"
	case Degraded:
		return "DEGRADED"
	case Impaired:
		return "IMPAIRED"
	case Critical:
		return "CRITICAL"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Action is the recommended repair mechanism for a status (§I of the paper:
// repairs have different costs and suit different severities).
func (s Status) Action() string {
	switch s {
	case Healthy:
		return "none"
	case Degraded:
		return "schedule crossbar reprogramming at next idle window"
	case Impaired:
		return "fault-aware remapping / redundancy substitution"
	default:
		return "cloud-edge collaborative retraining or module replacement"
	}
}

// CalibPoint is one (confidence distance → accuracy) calibration sample,
// produced offline by sweeping fault intensities (the data behind Fig. 8).
type CalibPoint struct {
	Distance float64 // mean all-class confidence distance
	Accuracy float64 // measured model accuracy at that distance
}

// Config sets the monitor's decision thresholds on the mean all-class
// confidence distance (the paper's most sensitive aggregate, SDC-A).
type Config struct {
	// DegradedAt/ImpairedAt/CriticalAt are ascending distance thresholds.
	DegradedAt, ImpairedAt, CriticalAt float64
	// Criteria lists the SDC rules to evaluate and report on each check.
	Criteria []detect.Criterion
}

// DefaultConfig uses the paper's SDC-A levels: 3% distance marks degradation
// and larger multiples mark escalating damage.
func DefaultConfig() Config {
	return Config{
		DegradedAt: 0.03, ImpairedAt: 0.06, CriticalAt: 0.10,
		Criteria: detect.AllCriteria,
	}
}

// Monitor is a commissioned concurrent-test agent for one accelerator.
type Monitor struct {
	cfg     Config
	golden  *detect.Golden
	calib   []CalibPoint
	history []Report
}

// New commissions a monitor: it captures golden confidences of the ideal
// model on the pattern set. calib may be nil (accuracy estimates are then
// omitted) or a Fig.-8-style curve sorted in any order.
func New(ideal *nn.Network, patterns *testgen.PatternSet, calib []CalibPoint, cfg Config) *Monitor {
	m := &Monitor{cfg: cfg, golden: detect.Capture(ideal, patterns),
		calib: append([]CalibPoint(nil), calib...)}
	sort.Slice(m.calib, func(i, j int) bool { return m.calib[i].Distance < m.calib[j].Distance })
	return m
}

// Report is the outcome of one concurrent-test round.
type Report struct {
	Round       int
	TopDist     float64
	AllDist     float64
	Detected    map[detect.Criterion]bool
	Status      Status
	EstAccuracy float64 // -1 when no calibration curve is loaded
	Action      string
}

// String renders the report on one line.
func (r Report) String() string {
	var flags []string
	for _, c := range detect.AllCriteria {
		if r.Detected[c] {
			flags = append(flags, c.String())
		}
	}
	acc := "n/a"
	if r.EstAccuracy >= 0 {
		acc = fmt.Sprintf("%.1f%%", 100*r.EstAccuracy)
	}
	return fmt.Sprintf("round %d: status=%s allDist=%.4f topDist=%.4f estAcc=%s flags=[%s] action=%s",
		r.Round, r.Status, r.AllDist, r.TopDist, acc, strings.Join(flags, ","), r.Action)
}

// Infer is the accelerator interface the monitor drives: given the pattern
// batch it returns softmax confidences (M, classes). It abstracts over the
// weight-level fault models and the device-level crossbar simulator.
type Infer func(x *tensor.Tensor) *tensor.Tensor

// NetworkInfer adapts an nn.Network into an Infer.
func NetworkInfer(net *nn.Network) Infer {
	return func(x *tensor.Tensor) *tensor.Tensor {
		return nn.Softmax(net.Forward(x))
	}
}

// Check runs one concurrent-test round against the accelerator.
func (m *Monitor) Check(accel Infer) Report {
	probs := accel(m.golden.Patterns.X)
	o := m.golden.ObserveProbs(probs)
	rep := Report{
		Round:       len(m.history) + 1,
		TopDist:     o.TopDist,
		AllDist:     o.AllDist,
		Detected:    make(map[detect.Criterion]bool, len(m.cfg.Criteria)),
		EstAccuracy: -1,
	}
	for _, c := range m.cfg.Criteria {
		rep.Detected[c] = o.Detect(c)
	}
	switch {
	case o.AllDist >= m.cfg.CriticalAt:
		rep.Status = Critical
	case o.AllDist >= m.cfg.ImpairedAt:
		rep.Status = Impaired
	case o.AllDist >= m.cfg.DegradedAt:
		rep.Status = Degraded
	default:
		rep.Status = Healthy
	}
	rep.Action = rep.Status.Action()
	if len(m.calib) > 0 {
		rep.EstAccuracy = m.EstimateAccuracy(o.AllDist)
	}
	m.history = append(m.history, rep)
	return rep
}

// EstimateAccuracy interpolates the calibration curve at the observed
// distance (clamping outside the calibrated range).
func (m *Monitor) EstimateAccuracy(dist float64) float64 {
	if len(m.calib) == 0 {
		return -1
	}
	if dist <= m.calib[0].Distance {
		return m.calib[0].Accuracy
	}
	last := m.calib[len(m.calib)-1]
	if dist >= last.Distance {
		return last.Accuracy
	}
	i := sort.Search(len(m.calib), func(i int) bool { return m.calib[i].Distance >= dist })
	a, b := m.calib[i-1], m.calib[i]
	if b.Distance == a.Distance {
		return b.Accuracy
	}
	t := (dist - a.Distance) / (b.Distance - a.Distance)
	return a.Accuracy*(1-t) + b.Accuracy*t
}

// History returns all reports so far.
func (m *Monitor) History() []Report { return m.history }

// Trend summarises the all-distance history — a monotone increase flags
// progressive degradation (drift/endurance) as opposed to a step change
// (hard fault event).
func (m *Monitor) Trend() (slope float64, summary stats.Summary) {
	xs := make([]float64, len(m.history))
	ys := make([]float64, len(m.history))
	for i, r := range m.history {
		xs[i] = float64(r.Round)
		ys[i] = r.AllDist
	}
	slope, _, _ = stats.LinearFit(xs, ys)
	return slope, stats.Summarize(ys)
}

// PatternCount returns the number of concurrent-test patterns in use.
func (m *Monitor) PatternCount() int { return m.golden.Patterns.M() }
