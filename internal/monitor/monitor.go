// Package monitor assembles the paper's pieces into the deployable artifact
// its title promises: a run-time health monitor for a ReRAM DNN accelerator.
// A Monitor owns a small pattern set and its golden confidences; each Check
// pushes the patterns through the (possibly degraded) accelerator, measures
// the confidence distance, classifies the health status, estimates the
// accuracy loss via a Fig.-8-style calibration curve, and recommends the
// cheapest adequate repair action (§I: different repair mechanisms suit
// different fault severities).
//
// Pattern choice matters for coverage. O-TP patterns have uniform golden
// confidences, so any fault that *also* drives outputs toward uniform — in
// particular pure multiplicative resistance drift, which shrinks every
// weight and collapses the logits — produces near-zero confidence distance
// on them: a structural blind spot of the SDC-A criterion on O-TP. C-TP
// patterns have peaked goldens and catch that fault class. Monitors guarding
// drift-prone devices should arm C-TP (or a C-TP + O-TP mix); O-TP remains
// the better accuracy estimator for bias-style faults (see cmd/monitor).
package monitor

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"

	"reramtest/internal/detect"
	"reramtest/internal/engine"
	"reramtest/internal/nn"
	"reramtest/internal/stats"
	"reramtest/internal/tensor"
	"reramtest/internal/testgen"
)

// Status is the coarse health classification of the accelerator.
type Status int

// Health statuses in increasing severity.
const (
	// Healthy: confidence distance within the noise floor; no action.
	Healthy Status = iota
	// Degraded: measurable drift; accuracy loss small but non-zero.
	Degraded
	// Impaired: significant accuracy loss; on-device repair advised.
	Impaired
	// Critical: severe loss; device needs cloud retraining or remapping.
	Critical
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Healthy:
		return "HEALTHY"
	case Degraded:
		return "DEGRADED"
	case Impaired:
		return "IMPAIRED"
	case Critical:
		return "CRITICAL"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Action is the recommended repair mechanism for a status (§I of the paper:
// repairs have different costs and suit different severities).
func (s Status) Action() string {
	switch s {
	case Healthy:
		return "none"
	case Degraded:
		return "schedule crossbar reprogramming at next idle window"
	case Impaired:
		return "fault-aware remapping / redundancy substitution"
	default:
		return "cloud-edge collaborative retraining or module replacement"
	}
}

// CalibPoint is one (confidence distance → accuracy) calibration sample,
// produced offline by sweeping fault intensities (the data behind Fig. 8).
type CalibPoint struct {
	Distance float64 // mean all-class confidence distance
	Accuracy float64 // measured model accuracy at that distance
}

// DefaultMaxHistory bounds the report history of monitors whose Config
// leaves MaxHistory at zero, so long-running deployments never leak.
const DefaultMaxHistory = 512

// Config sets the monitor's decision thresholds on the mean all-class
// confidence distance (the paper's most sensitive aggregate, SDC-A).
type Config struct {
	// DegradedAt/ImpairedAt/CriticalAt are ascending distance thresholds.
	DegradedAt, ImpairedAt, CriticalAt float64
	// Criteria lists the SDC rules to evaluate and report on each check.
	Criteria []detect.Criterion
	// MaxHistory caps the retained report history (ring buffer). 0 selects
	// DefaultMaxHistory; negative keeps every report (tests, short sweeps).
	MaxHistory int
}

// DefaultConfig uses the paper's SDC-A levels: 3% distance marks degradation
// and larger multiples mark escalating damage.
func DefaultConfig() Config {
	return Config{
		DegradedAt: 0.03, ImpairedAt: 0.06, CriticalAt: 0.10,
		Criteria:   detect.AllCriteria,
		MaxHistory: DefaultMaxHistory,
	}
}

// Validate rejects threshold configurations the classifier cannot act on:
// every threshold must be positive and finite, and the three levels must be
// strictly ascending (Degraded < Impaired < Critical).
func (c Config) Validate() error {
	for _, t := range []struct {
		name string
		v    float64
	}{{"DegradedAt", c.DegradedAt}, {"ImpairedAt", c.ImpairedAt}, {"CriticalAt", c.CriticalAt}} {
		if math.IsNaN(t.v) || math.IsInf(t.v, 0) {
			return fmt.Errorf("monitor: %s must be finite, got %v", t.name, t.v)
		}
		if t.v <= 0 {
			return fmt.Errorf("monitor: %s must be positive, got %v", t.name, t.v)
		}
	}
	if !(c.DegradedAt < c.ImpairedAt && c.ImpairedAt < c.CriticalAt) {
		return fmt.Errorf("monitor: thresholds must ascend, got Degraded=%v Impaired=%v Critical=%v",
			c.DegradedAt, c.ImpairedAt, c.CriticalAt)
	}
	return nil
}

// Monitor is a commissioned concurrent-test agent for one accelerator.
type Monitor struct {
	cfg     Config
	golden  *detect.Golden
	calib   []CalibPoint
	history []Report // ring buffer once cfg.MaxHistory is reached
	start   int      // index of the oldest retained report
	rounds  int      // total checks ever run (Round numbering survives eviction)
}

// New commissions a monitor: it captures golden confidences of the ideal
// model on the pattern set. calib may be nil (accuracy estimates are then
// omitted) or a Fig.-8-style curve sorted in any order. It fails when cfg
// does not pass Validate.
func New(ideal *nn.Network, patterns *testgen.PatternSet, calib []CalibPoint, cfg Config) (*Monitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxHistory == 0 {
		cfg.MaxHistory = DefaultMaxHistory
	}
	m := &Monitor{cfg: cfg, golden: detect.Capture(ideal, patterns),
		calib: append([]CalibPoint(nil), calib...)}
	sort.Slice(m.calib, func(i, j int) bool { return m.calib[i].Distance < m.calib[j].Distance })
	return m, nil
}

// MustNew is New for callers with a statically known-good configuration
// (examples, tests); it panics on a validation error.
func MustNew(ideal *nn.Network, patterns *testgen.PatternSet, calib []CalibPoint, cfg Config) *Monitor {
	m, err := New(ideal, patterns, calib, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Recommission recaptures the golden reference against a new ideal model —
// required after a retraining repair changes the deployed weights, so the
// monitor stops comparing the accelerator to a model that no longer exists.
// History, calibration and thresholds are preserved.
func (m *Monitor) Recommission(ideal *nn.Network) {
	m.golden = detect.Capture(ideal, m.golden.Patterns)
}

// Fingerprint digests the commission: the stimulus patterns and the golden
// confidences captured from the reference model, hashed bit-exactly. Two
// monitors with equal fingerprints will classify identical readouts
// identically, so a crash-recovery journal records the fingerprint and a
// replayed supervisor verifies its freshly recommissioned monitors against
// it — catching the silent failure mode where a restart commissions against
// the wrong (stale or retrained-away) reference model.
func (m *Monitor) Fingerprint() uint64 {
	h := fnv.New64a()
	var b [8]byte
	writeF := func(v float64) {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	binary.LittleEndian.PutUint64(b[:], uint64(m.golden.Classes))
	h.Write(b[:])
	for _, v := range m.golden.Patterns.X.Data() {
		writeF(v)
	}
	for _, v := range m.golden.Probs.Data() {
		writeF(v)
	}
	return h.Sum64()
}

// Report is the outcome of one concurrent-test round.
type Report struct {
	Round       int
	TopDist     float64
	AllDist     float64
	Detected    map[detect.Criterion]bool
	Status      Status
	EstAccuracy float64 // -1 when no calibration curve is loaded
	Action      string
	// NonFinite counts NaN/Inf confidence entries in the readout. Any
	// non-finite entry is itself evidence of a fault (poisoned datapath or
	// sensor), so such a round never classifies as Healthy.
	NonFinite int
}

// String renders the report on one line.
func (r Report) String() string {
	var flags []string
	for _, c := range detect.AllCriteria {
		if r.Detected[c] {
			flags = append(flags, c.String())
		}
	}
	acc := "n/a"
	if r.EstAccuracy >= 0 {
		acc = fmt.Sprintf("%.1f%%", 100*r.EstAccuracy)
	}
	return fmt.Sprintf("round %d: status=%s allDist=%.4f topDist=%.4f estAcc=%s flags=[%s] action=%s",
		r.Round, r.Status, r.AllDist, r.TopDist, acc, strings.Join(flags, ","), r.Action)
}

// Infer is the accelerator interface the monitor drives: given the pattern
// batch it returns softmax confidences (M, classes). It abstracts over the
// weight-level fault models and the device-level crossbar simulator.
type Infer func(x *tensor.Tensor) *tensor.Tensor

// NetworkInfer adapts an nn.Network into an Infer. The returned Infer runs
// the whole pattern batch through a compiled engine (bit-identical to the
// per-sample Forward path, allocation-free in steady state); weight changes
// made through the network's Params remain visible because the kernels read
// the parameter tensors at call time. Networks with no batched inference
// semantics fall back to the training-path forward.
func NetworkInfer(net *nn.Network) Infer {
	eng, err := engine.Compile(net, engine.Options{})
	if err != nil {
		return func(x *tensor.Tensor) *tensor.Tensor {
			return nn.Softmax(net.Forward(x))
		}
	}
	return eng.Probs
}

// NetworkInferAt is NetworkInfer with the readout plan compiled on an
// explicit precision tier. The fast tiers snapshot parameters at compile
// time, so to keep NetworkInfer's contract — weight changes made through the
// network's Params stay visible — the returned Infer reloads the converted
// caches before every probe. That refresh is O(params) per round, which the
// fast kernels more than win back at monitor pattern counts; it stays opt-in
// because the readout is no longer bit-identical to the f64 reference (see
// DESIGN.md §16 for the tier gates). Networks the tier cannot compile fall
// back to the reference NetworkInfer path.
func NetworkInferAt(net *nn.Network, prec tensor.Precision) Infer {
	if prec == tensor.F64 {
		return NetworkInfer(net)
	}
	eng, err := engine.Compile(net, engine.Options{Precision: prec})
	if err != nil {
		return NetworkInfer(net)
	}
	return func(x *tensor.Tensor) *tensor.Tensor {
		eng.ReloadParams()
		return eng.Probs(x)
	}
}

// EngineInfer adapts an already compiled engine into an Infer — for callers
// that manage their own plans (the fleet compiles one engine per device and
// routes both monitoring and fidelity probes through it).
func EngineInfer(e *engine.Engine) Infer { return e.Probs }

// Check runs one concurrent-test round against the accelerator.
func (m *Monitor) Check(accel Infer) Report {
	probs := accel(m.golden.Patterns.X)
	o := m.golden.ObserveProbs(probs)
	m.rounds++
	rep := Report{
		Round:       m.rounds,
		TopDist:     o.TopDist,
		AllDist:     o.AllDist,
		Detected:    make(map[detect.Criterion]bool, len(m.cfg.Criteria)),
		EstAccuracy: -1,
		NonFinite:   o.NonFinite,
	}
	for _, c := range m.cfg.Criteria {
		rep.Detected[c] = o.Detect(c)
	}
	switch {
	case math.IsNaN(o.AllDist) || o.AllDist >= m.cfg.CriticalAt:
		// a NaN aggregate means the readout is garbage end to end; treat it
		// as the worst case rather than letting NaN comparisons fall through
		// to Healthy
		rep.Status = Critical
	case o.AllDist >= m.cfg.ImpairedAt:
		rep.Status = Impaired
	case o.AllDist >= m.cfg.DegradedAt:
		rep.Status = Degraded
	default:
		rep.Status = Healthy
	}
	if rep.NonFinite > 0 && rep.Status == Healthy {
		// even a single NaN/Inf confidence disqualifies a Healthy verdict:
		// the distance sum caps each poisoned entry, but the entry itself
		// proves the datapath is broken
		rep.Status = Degraded
	}
	rep.Action = rep.Status.Action()
	if len(m.calib) > 0 {
		rep.EstAccuracy = m.EstimateAccuracy(o.AllDist)
	}
	m.record(rep)
	return rep
}

// record appends rep to the bounded history, evicting the oldest entry once
// the configured cap is reached.
func (m *Monitor) record(rep Report) {
	if m.cfg.MaxHistory < 0 {
		m.history = append(m.history, rep)
		return
	}
	if len(m.history) < m.cfg.MaxHistory {
		m.history = append(m.history, rep)
		return
	}
	m.history[m.start] = rep
	m.start = (m.start + 1) % len(m.history)
}

// EstimateAccuracy interpolates the calibration curve at the observed
// distance (clamping outside the calibrated range). A NaN or +Inf distance —
// a poisoned readout — pessimistically maps to the worst calibrated
// accuracy instead of silently propagating NaN through the estimate.
func (m *Monitor) EstimateAccuracy(dist float64) float64 {
	if len(m.calib) == 0 {
		return -1
	}
	if math.IsNaN(dist) || math.IsInf(dist, +1) {
		return m.calib[len(m.calib)-1].Accuracy
	}
	if dist <= m.calib[0].Distance {
		return m.calib[0].Accuracy
	}
	last := m.calib[len(m.calib)-1]
	if dist >= last.Distance {
		return last.Accuracy
	}
	i := sort.Search(len(m.calib), func(i int) bool { return m.calib[i].Distance >= dist })
	a, b := m.calib[i-1], m.calib[i]
	if b.Distance == a.Distance {
		return b.Accuracy
	}
	t := (dist - a.Distance) / (b.Distance - a.Distance)
	return a.Accuracy*(1-t) + b.Accuracy*t
}

// History returns the retained reports in chronological order. At most
// Config.MaxHistory reports are kept; Rounds reports how many checks ever
// ran.
func (m *Monitor) History() []Report {
	out := make([]Report, 0, len(m.history))
	out = append(out, m.history[m.start:]...)
	out = append(out, m.history[:m.start]...)
	return out
}

// Rounds returns the total number of checks run since commissioning,
// including reports already evicted from the bounded history.
func (m *Monitor) Rounds() int { return m.rounds }

// Trend summarises the all-distance history — a monotone increase flags
// progressive degradation (drift/endurance) as opposed to a step change
// (hard fault event). With fewer than two retained reports the slope is 0.
func (m *Monitor) Trend() (slope float64, summary stats.Summary) {
	hist := m.History()
	xs := make([]float64, len(hist))
	ys := make([]float64, len(hist))
	for i, r := range hist {
		xs[i] = float64(r.Round)
		ys[i] = r.AllDist
	}
	slope, _, _ = stats.LinearFit(xs, ys)
	return slope, stats.Summarize(ys)
}

// PatternCount returns the number of concurrent-test patterns in use.
func (m *Monitor) PatternCount() int { return m.golden.Patterns.M() }

// Input returns the pattern batch a compliant accelerator readout must be
// produced from — the (M, dim) tensor Check feeds to its Infer.
func (m *Monitor) Input() *tensor.Tensor { return m.golden.Patterns.X }

// Classes returns the number of output classes a readout must carry.
func (m *Monitor) Classes() int { return m.golden.Classes }

// Config returns the monitor's decision configuration.
func (m *Monitor) Config() Config { return m.cfg }
