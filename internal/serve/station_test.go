package serve_test

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"reramtest/internal/health"
	"reramtest/internal/nn"
	"reramtest/internal/repair"
	"reramtest/internal/serve"
)

// The Station is the convergence point of three independent callers per
// device — the supervisor's monitoring tick (which may preempt into a
// repair), the serving request path, and the drain — all contending on one
// per-device mutex. These tests drive the three concurrently; the race
// detector (serve is in RACE_PKGS) is the real assertion.

// TestStationCloneOut: the tensor a Station returns must be a copy — the
// device reuses its internal buffers on the next call, and a served response
// trampled by the next readout would be a silent corruption.
func TestStationCloneOut(t *testing.T) {
	dev := testDevices(1)[0]
	st := serve.NewStation(dev)
	x := requestBatch(0.25)
	first := st.Infer()(x)
	snapshot := first.Clone()
	// drive more traffic through the station, then check the first answer
	for i := 0; i < 4; i++ {
		st.Infer()(requestBatch(float64(i)))
	}
	if !first.Equal(snapshot) {
		t.Fatal("station returned a view of device-owned buffers — later readouts trampled an earlier response")
	}
}

// TestStationPanicReleasesLock: a device panic mid-readout must propagate to
// the caller and still release the station lock — a poisoned mutex would
// deadlock every later monitoring tick and request.
func TestStationPanicReleasesLock(t *testing.T) {
	dev := testDevices(1)[0]
	dev.set(func(d *servDevice) { d.crash = true })
	st := serve.NewStation(dev)

	func() {
		defer func() {
			if recover() == nil {
				t.Error("device panic did not propagate through the station")
			}
		}()
		st.Infer()(requestBatch(1))
	}()

	dev.set(func(d *servDevice) { d.crash = false })
	done := make(chan struct{})
	go func() {
		defer close(done)
		if out := st.Infer()(requestBatch(2)); out == nil {
			t.Error("post-panic readout returned nil")
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("station lock not released after a device panic")
	}
}

// TestStationConcurrentInferAndRepair: monitor-style repairs and serving
// readouts must serialise on the station lock without racing the underlying
// single-goroutine device.
func TestStationConcurrentInferAndRepair(t *testing.T) {
	dev := testDevices(1)[0]
	var applies atomic.Int64
	repDev := repairableDevice{servDevice: dev, applies: &applies}
	st := serve.NewStation(repDev)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				st.Infer()(requestBatch(float64(g*100 + i)))
			}
		}(g)
	}
	rp := st.Repairer()
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := rp.Apply(repair.Reprogram); err != nil {
					t.Error("repair under contention:", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := applies.Load(); got != 20 {
		t.Fatalf("repairs applied %d times, want 20", got)
	}
}

// repairableDevice bolts a counting repairer onto a servDevice.
type repairableDevice struct {
	*servDevice
	applies *atomic.Int64
}

func (d repairableDevice) Repairer() health.Repairer {
	return health.RepairerFunc(func(a repair.Action) (*nn.Network, error) {
		d.applies.Add(1)
		// hold the lock long enough for contention to matter under -race
		time.Sleep(200 * time.Microsecond)
		return nil, nil
	})
}

// TestStationUnderPreemptionCancelAndDrain is the full collision: monitoring
// ticks preempting the device (including repair applications through the
// station lock), bulk requests whose contexts cancel mid-flight, and a drain
// racing the tail of the traffic. Gate: race-clean, zero silent drops, no
// goroutine leaks, only typed errors.
func TestStationUnderPreemptionCancelAndDrain(t *testing.T) {
	before := runtime.NumGoroutine()

	devs := testDevices(2)
	devs[0].set(func(d *servDevice) { d.delay = time.Millisecond })
	s := newServer(t, devs, fleetConfig(), serve.Config{
		Workers: 4, HedgeAfter: 2 * time.Millisecond, DefaultDeadline: time.Second})

	stop := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() { // the monitor-preemption arm
		defer tickWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := s.Tick(); err != nil {
					t.Error("tick:", err)
					return
				}
			}
		}
	}()

	var untyped atomic.Int64
	var reqWG sync.WaitGroup
	r := rand.New(rand.NewSource(11))
	cancelEvery := 3
	for i := 0; i < 64; i++ {
		reqWG.Add(1)
		timeout := time.Duration(1+r.Intn(4)) * time.Millisecond
		go func(i int, timeout time.Duration) {
			defer reqWG.Done()
			ctx := context.Background()
			if i%cancelEvery == 0 { // the request-cancel arm
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, timeout)
				defer cancel()
			}
			_, err := s.Do(ctx, requestBatch(float64(i)), serve.Bulk)
			if err != nil && !errors.Is(err, serve.ErrDeadline) && !errors.Is(err, serve.ErrOverloaded) &&
				!errors.Is(err, serve.ErrNoDevices) && !errors.Is(err, serve.ErrFaulted) &&
				!errors.Is(err, serve.ErrClosed) {
				untyped.Add(1)
			}
		}(i, timeout)
	}

	// drain races the tail of the request wave
	time.Sleep(5 * time.Millisecond)
	closeErr := s.Close()
	close(stop)
	tickWG.Wait()
	reqWG.Wait()

	if closeErr != nil {
		t.Fatal("drain:", closeErr)
	}
	if n := untyped.Load(); n != 0 {
		t.Fatalf("%d untyped error(s) escaped under preemption+cancel+drain", n)
	}
	if st := s.Stats(); st.Admitted != st.Terminal() {
		t.Fatalf("silent drops under contention: %+v", st)
	}
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before+2 })
}
