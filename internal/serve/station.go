package serve

import (
	"sync"

	"reramtest/internal/fleet"
	"reramtest/internal/health"
	"reramtest/internal/monitor"
	"reramtest/internal/nn"
	"reramtest/internal/repair"
	"reramtest/internal/reram"
	"reramtest/internal/tensor"
	"reramtest/internal/testgen"
)

// Station wraps one fleet.Device for concurrent serving. The raw Device
// contract is single-goroutine (engine workspaces, plant accelerator swaps),
// but a serving frontend has two independent callers per device: the
// supervisor's monitoring tick and whichever request worker the router sent
// over. A Station serialises them on one per-device mutex and copies every
// inference result out of the device before releasing it, so a readout can
// never be trampled by the next caller reusing the same workspaces.
//
// Station itself implements fleet.Device, which is the trick that makes the
// whole stack converge on one lock: the Server commissions its fleet
// Supervisor over the Stations, so monitoring readouts, repair applications
// and serving requests all contend on the same mutex and the underlying
// device only ever sees one goroutine at a time — exactly the contract it
// was written for.
type Station struct {
	mu  sync.Mutex
	dev fleet.Device
}

// NewStation wraps dev. The raw device must not be driven directly while the
// station is in circulation.
func NewStation(dev fleet.Device) *Station { return &Station{dev: dev} }

// ID names the underlying device.
func (st *Station) ID() string { return st.dev.ID() }

// Reference reports the device's current reference model.
func (st *Station) Reference() *nn.Network { return st.dev.Reference() }

// Patterns reports the device's concurrent-test stimulus set.
func (st *Station) Patterns() *testgen.PatternSet { return st.dev.Patterns() }

// Infer returns the guarded readout path: lock, run the device's own Infer,
// clone the result out, unlock. A panic inside the device propagates to the
// caller (the lock is still released) — the health runtime and the serving
// attempt path both recover it and treat it as a fault.
func (st *Station) Infer() monitor.Infer { return st.guardedInfer }

func (st *Station) guardedInfer(x *tensor.Tensor) *tensor.Tensor {
	st.mu.Lock()
	defer st.mu.Unlock()
	// attribution happens inside the lock so a class switch can never bleed
	// into another caller's inference on the same device: every charge the
	// device makes happens under st.mu, and so does every switch
	ctr := st.CostCounter()
	prev := ctr.SetClass(reram.ClassMonitor)
	defer ctr.SetClass(prev)
	out := st.dev.Infer()(x)
	if out == nil {
		return nil
	}
	// copy out before unlocking: device Infer implementations (engine.Probs,
	// plants) return views of reused internal buffers
	return out.Clone()
}

// ServeInfer is the serving-path twin of the guarded readout: same lock,
// same copy-out discipline, but charges the device's cost counter under
// ClassServing and reports the request's measured hardware spend (the
// serving-class delta across the call; zero for unmetered devices).
func (st *Station) ServeInfer(x *tensor.Tensor) (out *tensor.Tensor, cost reram.Cost) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ctr := st.CostCounter()
	prev := ctr.SetClass(reram.ClassServing)
	defer ctr.SetClass(prev)
	before := ctr.Snapshot().Serving
	out = st.dev.Infer()(x)
	cost = ctr.Snapshot().Serving.Minus(before)
	if out == nil {
		return nil, cost
	}
	return out.Clone(), cost
}

// CostCounter implements fleet.CostMetered by forwarding to the wrapped
// device; nil when the device is unmetered.
func (st *Station) CostCounter() *reram.Counter {
	if cm, ok := st.dev.(fleet.CostMetered); ok {
		return cm.CostCounter()
	}
	return nil
}

// Repairer returns the device's repairer behind the station lock — a repair
// (reprogramming a crossbar, swapping the accelerator model) must not
// interleave with an inference on the same device.
func (st *Station) Repairer() health.Repairer {
	inner := st.dev.Repairer()
	if inner == nil {
		return nil
	}
	return lockedRepairer{st: st, inner: inner}
}

type lockedRepairer struct {
	st    *Station
	inner health.Repairer
}

func (lr lockedRepairer) Apply(a repair.Action) (*nn.Network, error) {
	lr.st.mu.Lock()
	defer lr.st.mu.Unlock()
	ctr := lr.st.CostCounter()
	prev := ctr.SetClass(reram.ClassRepair)
	defer ctr.SetClass(prev)
	return lr.inner.Apply(a)
}
