package serve

import "errors"

// Typed serving errors. Every request a Server admits terminates in exactly
// one of: a successful Response, or an error matching (errors.Is) one of
// these sentinels — the zero-silent-drops contract the chaos soak audits.
var (
	// ErrOverloaded: the admission queue for the request's priority class is
	// at capacity. The request was never admitted; the caller should shed or
	// back off, not retry in a tight loop.
	ErrOverloaded = errors.New("serve: overloaded")

	// ErrDeadline: the request's context expired (or was canceled) before a
	// device produced an answer — in the queue or mid-flight. Attempts still
	// running on a device finish in the background and feed the breaker if
	// they fault; they just can't help this caller anymore.
	ErrDeadline = errors.New("serve: deadline exceeded")

	// ErrNoDevices: the router offered no legal placement — the fleet is
	// shedding load below its MinServing floor, or every serving device is
	// quarantined. The error the server returns wraps the router's typed
	// refusal, so errors.Is(err, fleet.ErrNoEligibleDevice) also holds and
	// the message carries the router's reason.
	ErrNoDevices = errors.New("serve: no serving devices")

	// ErrFaulted: every attempt the server was willing to make (the primary
	// placement plus at most one hedged retry on a different device) came
	// back faulted — panic, nil or malformed output, non-finite confidences.
	ErrFaulted = errors.New("serve: all attempts faulted")

	// ErrClosed: Do was called after Close began draining.
	ErrClosed = errors.New("serve: server closed")
)

// Priority is a request's admission class.
type Priority int

const (
	// Bulk is ordinary inference traffic: large queue, first to be shed.
	Bulk Priority = iota
	// Monitor is concurrent-test / health-critical traffic: its own small
	// queue, drained ahead of Bulk by every worker, so a saturated bulk
	// queue can never starve the test patterns the paper's monitoring
	// scheme depends on.
	Monitor
)

// String names the priority class.
func (p Priority) String() string {
	switch p {
	case Monitor:
		return "monitor"
	default:
		return "bulk"
	}
}
