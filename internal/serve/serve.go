// Package serve is the concurrent inference frontend over the fleet: the
// layer that turns "a supervised pool of self-testing accelerators"
// (internal/fleet over internal/health) into something a caller can actually
// throw traffic at while the concurrent-test monitor keeps running
// underneath.
//
// The request path, end to end:
//
//   - Admission. Do is non-blocking: each priority class has a bounded
//     queue, and a full queue rejects immediately with ErrOverloaded rather
//     than letting latency build invisibly. Monitor-class traffic (test
//     patterns, health probes) has its own queue that every worker drains
//     first, so bulk saturation can never starve the monitoring scheme.
//   - Deadlines. Every request carries a context deadline (DefaultDeadline
//     is applied when the caller brought none) honored at every stage: a
//     request that expires in the queue is answered with ErrDeadline without
//     touching a device, and one that expires mid-flight returns ErrDeadline
//     while its attempt finishes harmlessly in the background.
//   - Hedging. The first attempt lands on the router's weighted choice. If
//     it is still silent after HedgeAfter, a second attempt is launched on a
//     different device (never the same one, never a quarantined one — the
//     router guarantees both) and the first answer wins. A faulted first
//     attempt triggers the same second placement immediately.
//   - Fault feedback. Any attempt that panics, returns nil/malformed output
//     or non-finite confidences is reported into the fleet's circuit breaker
//     via ReportServingFault — serving traffic is a health sensor too, and a
//     device that keeps eating requests is quarantined without waiting for
//     the next monitoring tick.
//   - Degraded serving. When the router places a request on a
//     Degraded-but-serving accelerator the response says so
//     (Response.Degraded) instead of failing: the paper's economics want
//     maximum useful life out of drifting silicon, and the caller decides
//     what confidence to put in the answer.
//   - Drain. Close stops admission (ErrClosed), then every already-admitted
//     request still gets its answer before Close returns; no goroutine
//     outlives it.
//
// Every admitted request terminates in exactly one of: a Response, or an
// error matching ErrDeadline, ErrNoDevices or ErrFaulted. The chaos soak
// (internal/campaign.RunServeSoak) audits that invariant under injected
// slow readouts, mid-request crashes and deadline storms.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"reramtest/internal/fleet"
	"reramtest/internal/journal"
	"reramtest/internal/monitor"
	"reramtest/internal/reram"
	"reramtest/internal/tensor"
)

// Config tunes the serving frontend.
type Config struct {
	// Workers is the number of request-handling goroutines (0 → 4).
	Workers int
	// QueueBulk bounds the bulk admission queue (0 → 64).
	QueueBulk int
	// QueueMonitor bounds the monitor-priority admission queue (0 → 16).
	QueueMonitor int
	// HedgeAfter is how long the first attempt may stay silent before a
	// hedged second attempt is launched on another device (0 → 20ms).
	HedgeAfter time.Duration
	// DefaultDeadline is applied to requests whose context carries no
	// deadline (0 → 1s).
	DefaultDeadline time.Duration
	// Precision labels the numeric tier this server's devices compute at
	// (tensor.F64 reference by default). The server does not compile engines
	// itself — devices arrive with their plans — so this is operator-facing
	// telemetry: it rides through Precision(), netserve shard status,
	// /v1/healthz and /statsz, letting a mixed-precision tier show which
	// shards answer from the fast tiers.
	Precision tensor.Precision
}

// DefaultConfig returns the serving defaults.
func DefaultConfig() Config {
	return Config{Workers: 4, QueueBulk: 64, QueueMonitor: 16,
		HedgeAfter: 20 * time.Millisecond, DefaultDeadline: time.Second}
}

// Validate rejects configurations the server cannot operate under.
func (c Config) Validate() error {
	if c.Workers < 0 || c.QueueBulk < 0 || c.QueueMonitor < 0 {
		return fmt.Errorf("serve: Workers/QueueBulk/QueueMonitor must be ≥ 0")
	}
	if c.HedgeAfter < 0 || c.DefaultDeadline < 0 {
		return fmt.Errorf("serve: HedgeAfter and DefaultDeadline must be ≥ 0")
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.QueueBulk == 0 {
		c.QueueBulk = 64
	}
	if c.QueueMonitor == 0 {
		c.QueueMonitor = 16
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = 20 * time.Millisecond
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = time.Second
	}
	return c
}

// Response is one served inference answer.
type Response struct {
	// Probs is the (N, outDim) softmax confidence batch, owned by the caller
	// (copied out of the device before the device lock was released).
	Probs *tensor.Tensor
	// Device is the accelerator that produced the answer.
	Device string
	// Status is the device's confirmed health status at dispatch time.
	Status monitor.Status
	// Degraded flags an answer served from a Degraded-but-serving
	// accelerator: still within the monitor's serving envelope, but the
	// caller may want to weight its confidence accordingly.
	Degraded bool
	// Hedged: the answer came from the hedged second attempt (the primary
	// was still silent when the hedge fired and the hedge won).
	Hedged bool
	// Retried: the primary attempt faulted and this answer came from the
	// immediate retry on another device.
	Retried bool
	// Cost is the measured hardware spend of the attempt that produced this
	// answer (the winning device's serving-class counter delta; abandoned
	// hedge attempts still charge their own device but are not reported
	// here). Zero when the device is unmetered.
	Cost reram.Cost
}

// Stats is a snapshot of the server's lifetime counters. For a drained
// server, Admitted == Served + Deadlines + NoDevices + FaultFailures — the
// zero-silent-drops invariant (rejections at admission are counted in
// Overloads and were never admitted).
type Stats struct {
	Admitted       uint64
	Served         uint64
	ServedDegraded uint64
	Overloads      uint64
	Deadlines      uint64
	NoDevices      uint64
	FaultFailures  uint64

	Hedges  uint64 // hedged second attempts launched (slow primary)
	Retries uint64 // immediate second attempts launched (faulted primary)
}

// Terminal sums the terminal outcomes of admitted requests.
func (st Stats) Terminal() uint64 {
	return st.Served + st.Deadlines + st.NoDevices + st.FaultFailures
}

// outcome is what a worker delivers back to the blocked Do call.
type outcome struct {
	resp Response
	err  error
}

// pending is one admitted request in flight through the server.
type pending struct {
	ctx  context.Context
	x    *tensor.Tensor
	enq  time.Time
	done chan outcome // buffered 1; exactly one finish per request
}

func (p *pending) finish(resp Response, err error) {
	p.done <- outcome{resp: resp, err: err}
}

// Server is the concurrent serving frontend. Its exported methods are safe
// for concurrent use; it owns its fleet.Supervisor outright (all supervisor
// state mutation is serialised behind an internal lock), so callers must not
// drive the supervisor directly.
type Server struct {
	cfg      Config
	sup      *fleet.Supervisor
	stations map[string]*Station
	inDim    int

	// backendMu serialises supervisor state mutation: ticks and serving-fault
	// reports. The router inside the supervisor has its own lock, so the hot
	// dispatch path never touches backendMu.
	backendMu sync.Mutex

	qMon, qBulk chan *pending
	admitMu     sync.RWMutex // guards closed + the enqueue-vs-close race
	closed      bool
	closeOnce   sync.Once
	closeErr    error
	drained     Stats // counters frozen at the end of the first Close's drain

	rootCtx context.Context
	cancel  context.CancelFunc

	workerWG  sync.WaitGroup
	attemptWG sync.WaitGroup

	admitted, served, servedDegraded atomic.Uint64
	overloads, deadlines             atomic.Uint64
	noDevices, faultFailures         atomic.Uint64
	hedges, retries                  atomic.Uint64
}

// New commissions a fleet supervisor over devices (each wrapped in a
// Station so monitoring and serving serialise per device) and starts the
// worker pool. jw may be nil (no durability). The fleet config's MinServing
// is validated against the fleet size at construction.
func New(devices []fleet.Device, fcfg fleet.Config, scfg Config, jw *journal.Writer) (*Server, error) {
	scfg, stations, wrapped, err := wrapDevices(devices, scfg)
	if err != nil {
		return nil, err
	}
	sup, err := fleet.New(wrapped, fcfg, jw)
	if err != nil {
		return nil, err
	}
	return startServer(scfg, sup, stations, devices[0].Reference().InDim()), nil
}

// NewStore is New over a snapshot-compacting journal.Store instead of a bare
// WAL writer. If commissioning the fleet cannot be journaled (the store's
// disk is already faulty) the server still starts, running memory-only with
// Unjournaled set, and the returned error wraps fleet.ErrUnjournaled so the
// operator can decide whether that is acceptable.
func NewStore(devices []fleet.Device, fcfg fleet.Config, scfg Config, store *journal.Store) (*Server, error) {
	scfg, stations, wrapped, err := wrapDevices(devices, scfg)
	if err != nil {
		return nil, err
	}
	sup, err := fleet.NewStore(wrapped, fcfg, store)
	if err != nil && !errors.Is(err, fleet.ErrUnjournaled) {
		return nil, err
	}
	return startServer(scfg, sup, stations, devices[0].Reference().InDim()), err
}

// wrapDevices validates the config and wraps each device in a Station so
// monitoring and serving serialise per device.
func wrapDevices(devices []fleet.Device, scfg Config) (Config, map[string]*Station, []fleet.Device, error) {
	if err := scfg.Validate(); err != nil {
		return scfg, nil, nil, err
	}
	scfg = scfg.withDefaults()
	if len(devices) == 0 {
		return scfg, nil, nil, errors.New("serve: no devices")
	}
	stations := make(map[string]*Station, len(devices))
	wrapped := make([]fleet.Device, len(devices))
	for i, d := range devices {
		st := NewStation(d)
		wrapped[i] = st
		stations[st.ID()] = st
	}
	return scfg, stations, wrapped, nil
}

// startServer assembles the Server around a commissioned supervisor and
// starts the worker pool.
func startServer(scfg Config, sup *fleet.Supervisor, stations map[string]*Station, inDim int) *Server {
	rootCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      scfg,
		sup:      sup,
		stations: stations,
		inDim:    inDim,
		qMon:     make(chan *pending, scfg.QueueMonitor),
		qBulk:    make(chan *pending, scfg.QueueBulk),
		rootCtx:  rootCtx,
		cancel:   cancel,
	}
	for i := 0; i < scfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s
}

// Do submits one (N, inDim) inference batch and blocks until it terminates:
// a Response, or an error matching ErrOverloaded, ErrClosed, ErrDeadline,
// ErrNoDevices or ErrFaulted. Safe for concurrent use.
func (s *Server) Do(ctx context.Context, x *tensor.Tensor, prio Priority) (Response, error) {
	if x == nil || x.Rank() != 2 || x.Dim(1) != s.inDim {
		return Response{}, fmt.Errorf("serve: request batch must be (N, %d)", s.inDim)
	}
	dctx := ctx
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultDeadline)
		defer cancel()
	}
	p := &pending{ctx: dctx, x: x, enq: time.Now(), done: make(chan outcome, 1)}
	q := s.qBulk
	if prio == Monitor {
		q = s.qMon
	}

	// enqueue under the admission read-lock so Close can never close a
	// channel with a send in flight
	s.admitMu.RLock()
	if s.closed {
		s.admitMu.RUnlock()
		return Response{}, fmt.Errorf("serve: rejected at admission: %w", ErrClosed)
	}
	select {
	case q <- p:
		s.admitMu.RUnlock()
	default:
		s.admitMu.RUnlock()
		s.overloads.Add(1)
		return Response{}, fmt.Errorf("serve: %v queue at capacity: %w", prio, ErrOverloaded)
	}
	s.admitted.Add(1)

	var o outcome
	select {
	case o = <-p.done:
	case <-dctx.Done():
		// the worker (or its background attempt) no longer matters to this
		// caller; it finishes into the buffered done channel and is dropped
		o = outcome{err: fmt.Errorf("serve: %v: %w", dctx.Err(), ErrDeadline)}
	}
	s.countTerminal(o)
	return o.resp, o.err
}

// countTerminal attributes exactly one terminal counter per admitted request.
func (s *Server) countTerminal(o outcome) {
	switch {
	case o.err == nil:
		s.served.Add(1)
		if o.resp.Degraded {
			s.servedDegraded.Add(1)
		}
	case errors.Is(o.err, ErrDeadline):
		s.deadlines.Add(1)
	case errors.Is(o.err, ErrNoDevices):
		s.noDevices.Add(1)
	default:
		s.faultFailures.Add(1)
	}
}

// worker pulls pendings (monitor queue first) and handles them until both
// queues are closed and drained.
func (s *Server) worker() {
	defer s.workerWG.Done()
	qm, qb := s.qMon, s.qBulk
	for {
		// priority pass: drain monitor-class work first, non-blocking
		if qm != nil {
			select {
			case p, ok := <-qm:
				if !ok {
					qm = nil
					break
				}
				s.handle(p)
				continue
			default:
			}
		}
		if qm == nil && qb == nil {
			return
		}
		// blocking pass over whichever queues remain open (a nil channel
		// never fires, which is how a closed-and-drained queue drops out)
		select {
		case p, ok := <-qm:
			if !ok {
				qm = nil
				continue
			}
			s.handle(p)
		case p, ok := <-qb:
			if !ok {
				qb = nil
				continue
			}
			s.handle(p)
		}
	}
}

// attemptResult is one device attempt's outcome.
type attemptResult struct {
	probs  *tensor.Tensor
	device string
	status monitor.Status
	hedge  bool
	retry  bool
	cost   reram.Cost
	err    error
}

// handle runs one admitted request to termination.
func (s *Server) handle(p *pending) {
	if p.ctx.Err() != nil {
		p.finish(Response{}, fmt.Errorf("serve: expired in queue after %v: %w",
			time.Since(p.enq).Round(time.Microsecond), ErrDeadline))
		return
	}
	first, st1, derr := s.sup.DispatchAvoidingErr("")
	if derr != nil {
		// both sentinels stay matchable: serve.ErrNoDevices for frontend
		// callers, fleet.ErrNoEligibleDevice (with the router's reason) for
		// anyone diagnosing why the fleet had nothing to offer
		p.finish(Response{}, fmt.Errorf("serve: %w: %w", ErrNoDevices, derr))
		return
	}
	// resCh is buffered for every attempt that could ever write to it, so
	// abandoned attempts never leak a goroutine
	resCh := make(chan attemptResult, 2)
	s.launchAttempt(first, st1, false, false, p.x, resCh)
	hedgeTimer := time.NewTimer(s.cfg.HedgeAfter)
	defer hedgeTimer.Stop()

	outstanding, second := 1, false
	var firstErr error
	for {
		select {
		case r := <-resCh:
			outstanding--
			if r.err == nil {
				p.finish(Response{
					Probs:    r.probs,
					Device:   r.device,
					Status:   r.status,
					Degraded: r.status == monitor.Degraded,
					Hedged:   r.hedge,
					Retried:  r.retry,
					Cost:     r.cost,
				}, nil)
				return
			}
			if firstErr == nil {
				firstErr = r.err
			}
			// faulted: one immediate second placement on a different device,
			// unless a hedge already claimed the retry slot
			if !second && p.ctx.Err() == nil {
				if id2, st2, ok2 := s.sup.DispatchAvoiding(first); ok2 {
					second = true
					s.retries.Add(1)
					s.launchAttempt(id2, st2, false, true, p.x, resCh)
					outstanding++
					continue
				}
			}
			if outstanding == 0 {
				p.finish(Response{}, fmt.Errorf("serve: %v: %w", firstErr, ErrFaulted))
				return
			}
		case <-hedgeTimer.C:
			if second {
				continue
			}
			if id2, st2, ok2 := s.sup.DispatchAvoiding(first); ok2 {
				second = true
				s.hedges.Add(1)
				s.launchAttempt(id2, st2, true, false, p.x, resCh)
				outstanding++
			}
		case <-p.ctx.Done():
			p.finish(Response{}, fmt.Errorf("serve: %v with %d attempt(s) outstanding: %w",
				p.ctx.Err(), outstanding, ErrDeadline))
			return
		}
	}
}

// launchAttempt runs one placement in its own goroutine. The attempt is not
// cancelable mid-inference (a device readout cannot be interrupted); an
// abandoned attempt completes into the buffered result channel, releases its
// router slot and still reports a fault into the breaker if it produced one.
func (s *Server) launchAttempt(id string, status monitor.Status, hedge, retry bool, x *tensor.Tensor, resCh chan attemptResult) {
	s.attemptWG.Add(1)
	go func() {
		defer s.attemptWG.Done()
		defer s.sup.Complete(id)
		probs, cost, err := s.runOn(id, x)
		if err != nil {
			s.reportFault(id)
		}
		resCh <- attemptResult{probs: probs, device: id, status: status, hedge: hedge, retry: retry, cost: cost, err: err}
	}()
}

// runOn executes one guarded serving inference on device id, validates the
// answer and reports its measured hardware spend.
func (s *Server) runOn(id string, x *tensor.Tensor) (probs *tensor.Tensor, cost reram.Cost, err error) {
	st := s.stations[id]
	if st == nil {
		return nil, cost, fmt.Errorf("serve: router chose unknown device %q", id)
	}
	defer func() {
		if r := recover(); r != nil {
			probs, err = nil, fmt.Errorf("serve: device %s panicked mid-request: %v", id, r)
		}
	}()
	out, cost := st.ServeInfer(x)
	if out == nil {
		return nil, cost, fmt.Errorf("serve: device %s returned no output", id)
	}
	if out.Rank() != 2 || out.Dim(0) != x.Dim(0) {
		return nil, cost, fmt.Errorf("serve: device %s returned a malformed batch", id)
	}
	for _, v := range out.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, cost, fmt.Errorf("serve: device %s returned non-finite confidences", id)
		}
	}
	return out, cost, nil
}

// reportFault feeds one serving-path fault into the fleet's breaker.
func (s *Server) reportFault(id string) {
	s.backendMu.Lock()
	defer s.backendMu.Unlock()
	s.sup.ReportServingFault(id)
}

// Tick runs one supervised monitoring round across the fleet, serialised
// against serving-fault reports. Closing the server cancels the tick's
// context, so a drain never waits out a device's full backoff schedule.
func (s *Server) Tick() ([]fleet.RoundResult, error) {
	s.backendMu.Lock()
	defer s.backendMu.Unlock()
	return s.sup.TickCtx(s.rootCtx)
}

// Serving returns the device IDs currently eligible for traffic.
func (s *Server) Serving() []string {
	s.backendMu.Lock()
	defer s.backendMu.Unlock()
	return s.sup.Serving()
}

// Quarantined returns the device IDs currently withheld from traffic.
func (s *Server) Quarantined() []string {
	s.backendMu.Lock()
	defer s.backendMu.Unlock()
	return s.sup.Quarantined()
}

// Retired returns the device IDs permanently withdrawn from service. When
// every device is retired the server is starved for good — the signal a
// sharded frontend uses to drain this shard and rebalance its tenants.
func (s *Server) Retired() []string {
	s.backendMu.Lock()
	defer s.backendMu.Unlock()
	return s.sup.Retired()
}

// Unjournaled reports whether the backend supervisor has abandoned its
// journal after a persistent disk fault and is running memory-only. Always
// false for servers built over a bare WAL writer (or no journal at all).
func (s *Server) Unjournaled() bool {
	s.backendMu.Lock()
	defer s.backendMu.Unlock()
	return s.sup.Unjournaled()
}

// JournalError returns the disk fault that forced the supervisor off its
// journal, or nil while journaling (or when never journaled through a store).
func (s *Server) JournalError() error {
	s.backendMu.Lock()
	defer s.backendMu.Unlock()
	return s.sup.JournalError()
}

// Devices returns every commissioned device ID in commissioning order
// (immutable after construction, so this never contends with the backend).
func (s *Server) Devices() []string { return s.sup.DeviceIDs() }

// Stats snapshots the lifetime counters.
// Precision reports the numeric tier label this server was configured with
// (see Config.Precision).
func (s *Server) Precision() tensor.Precision { return s.cfg.Precision }

func (s *Server) Stats() Stats {
	return Stats{
		Admitted:       s.admitted.Load(),
		Served:         s.served.Load(),
		ServedDegraded: s.servedDegraded.Load(),
		Overloads:      s.overloads.Load(),
		Deadlines:      s.deadlines.Load(),
		NoDevices:      s.noDevices.Load(),
		FaultFailures:  s.faultFailures.Load(),
		Hedges:         s.hedges.Load(),
		Retries:        s.retries.Load(),
	}
}

// CostStats snapshots every station's cumulative hardware spend by
// attribution class, keyed by device ID. Counters are read live (atomic
// loads concurrent with serving); unmetered devices report zero.
func (s *Server) CostStats() map[string]reram.CostBreakdown {
	out := make(map[string]reram.CostBreakdown, len(s.stations))
	for id, st := range s.stations {
		out[id] = st.CostCounter().Snapshot()
	}
	return out
}

// Close stops admission, drains every already-admitted request (each one
// still receives its Response or typed error), waits for all background
// attempts to land, and returns. Close is idempotent and safe for concurrent
// callers: exactly one caller performs the drain, every other call — racing
// or later — blocks until that drain completes and then returns the first
// call's result, so no caller can observe a half-drained server or race the
// queue teardown.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.admitMu.Lock()
		s.closed = true
		s.admitMu.Unlock()
		s.cancel() // cuts any in-flight tick's backoff sleeps
		close(s.qMon)
		close(s.qBulk)
		s.workerWG.Wait()
		s.attemptWG.Wait()
		s.drained = s.Stats()
	})
	return s.closeErr
}

// Drained reports the counters frozen by the first Close's drain and whether
// the drain has completed. Before Close it returns (Stats{}, false). The
// snapshot is taken once every queue is emptied and every attempt has landed;
// a caller that abandoned its request at the deadline may attribute its
// terminal counter marginally after, so audits of the Admitted==Terminal
// invariant should read Stats() after all Do callers have returned.
func (s *Server) Drained() (Stats, bool) {
	s.admitMu.RLock()
	closed := s.closed
	s.admitMu.RUnlock()
	if !closed {
		return Stats{}, false
	}
	// re-enter Close: either the drain already finished (fast path through
	// the Once) or we block until it has — either way `drained` is stable
	// after this returns.
	s.Close()
	return s.drained, true
}
