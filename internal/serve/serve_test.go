package serve_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"reramtest/internal/fleet"
	"reramtest/internal/health"
	"reramtest/internal/models"
	"reramtest/internal/monitor"
	"reramtest/internal/nn"
	"reramtest/internal/rng"
	"reramtest/internal/serve"
	"reramtest/internal/tensor"
	"reramtest/internal/testgen"
)

// servDevice is a scripted accelerator for frontend tests: injectable drift
// (confidence shift), crashes, slow readouts and a gate that holds inference
// until released. Its own state is mutex-guarded because tests mutate the
// script while the server drives traffic.
type servDevice struct {
	id       string
	net      *nn.Network
	patterns *testgen.PatternSet

	mu    sync.Mutex
	shift float64
	crash bool
	delay time.Duration
	gate  chan struct{}
	calls []float64 // first element of each inferred batch, in serve order
}

func (d *servDevice) ID() string                    { return d.id }
func (d *servDevice) Reference() *nn.Network        { return d.net }
func (d *servDevice) Patterns() *testgen.PatternSet { return d.patterns }
func (d *servDevice) Repairer() health.Repairer     { return nil }

func (d *servDevice) set(f func(*servDevice)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f(d)
}

func (d *servDevice) callLog() []float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]float64(nil), d.calls...)
}

func (d *servDevice) Infer() monitor.Infer {
	return func(x *tensor.Tensor) *tensor.Tensor {
		d.mu.Lock()
		crash, delay, shift, gate := d.crash, d.delay, d.shift, d.gate
		d.calls = append(d.calls, x.Data()[0])
		d.mu.Unlock()
		if gate != nil {
			<-gate
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		if crash {
			panic("servDevice: injected crash")
		}
		probs := nn.Softmax(d.net.Forward(x))
		if shift != 0 {
			probs.Apply(func(v float64) float64 { return v + shift })
		}
		return probs
	}
}

func testDevices(n int) []*servDevice {
	patterns := &testgen.PatternSet{
		Name: "t", Method: "plain",
		X:      tensor.RandUniform(rng.New(2), 0, 1, 8, 16),
		Labels: make([]int, 8),
	}
	devs := make([]*servDevice, n)
	for i := range devs {
		devs[i] = &servDevice{id: fmt.Sprintf("dev-%d", i),
			net: models.MLP(rng.New(1), 16, []int{12}, 5), patterns: patterns}
	}
	return devs
}

func fleetConfig() fleet.Config {
	cfg := fleet.DefaultConfig()
	cfg.Health.Sleep = func(time.Duration) {}
	return cfg
}

func newServer(t *testing.T, devs []*servDevice, fcfg fleet.Config, scfg serve.Config) *serve.Server {
	t.Helper()
	wrapped := make([]fleet.Device, len(devs))
	for i, d := range devs {
		wrapped[i] = d
	}
	s, err := serve.New(wrapped, fcfg, scfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func requestBatch(tag float64) *tensor.Tensor {
	x := tensor.RandUniform(rng.New(7), 0, 1, 2, 16)
	x.Data()[0] = tag
	return x
}

func TestServeHappyPath(t *testing.T) {
	devs := testDevices(2)
	s := newServer(t, devs, fleetConfig(), serve.Config{})
	defer s.Close()

	x := requestBatch(0.5)
	want := nn.Softmax(devs[0].net.Forward(x)) // identical nets on every device
	resp, err := s.Do(context.Background(), x, serve.Bulk)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Probs.Equal(want) {
		t.Fatal("served confidences differ from the device's own forward")
	}
	if resp.Degraded || resp.Status != monitor.Healthy {
		t.Fatalf("healthy fleet served resp=%+v", resp)
	}
	if resp.Hedged || resp.Retried {
		t.Fatalf("uncontended request was hedged/retried: %+v", resp)
	}
	st := s.Stats()
	if st.Admitted != 1 || st.Served != 1 || st.Terminal() != 1 {
		t.Fatalf("stats after one request: %+v", st)
	}
}

func TestBadRequestRejectedBeforeAdmission(t *testing.T) {
	s := newServer(t, testDevices(1), fleetConfig(), serve.Config{})
	defer s.Close()
	if _, err := s.Do(context.Background(), nil, serve.Bulk); err == nil {
		t.Fatal("nil batch admitted")
	}
	if _, err := s.Do(context.Background(), tensor.New(2, 7), serve.Bulk); err == nil {
		t.Fatal("wrong-width batch admitted")
	}
	if st := s.Stats(); st.Admitted != 0 {
		t.Fatalf("malformed requests were admitted: %+v", st)
	}
}

// TestTypedErrOverloaded: with the single worker pinned on a gated device and
// the bulk queue full, the next Do must reject immediately with
// ErrOverloaded — not queue invisibly, not block.
func TestTypedErrOverloaded(t *testing.T) {
	devs := testDevices(1)
	gate := make(chan struct{})
	devs[0].set(func(d *servDevice) { d.gate = gate })
	s := newServer(t, devs, fleetConfig(), serve.Config{
		Workers: 1, QueueBulk: 1, QueueMonitor: 1, DefaultDeadline: 5 * time.Second})
	defer s.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ { // one pins the worker, one fills the queue
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Do(context.Background(), requestBatch(1), serve.Bulk)
		}()
	}
	waitFor(t, func() bool { return s.Stats().Admitted == 2 })

	_, err := s.Do(context.Background(), requestBatch(2), serve.Bulk)
	if !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("full queue returned %v, want ErrOverloaded", err)
	}
	close(gate)
	wg.Wait()
	if st := s.Stats(); st.Overloads != 1 || st.Admitted != st.Terminal() {
		t.Fatalf("post-overload stats: %+v", st)
	}
}

// TestTypedErrDeadline: a slow device must not hold the caller past its
// context deadline; the stuck attempt finishes in the background.
func TestTypedErrDeadline(t *testing.T) {
	devs := testDevices(1)
	devs[0].set(func(d *servDevice) { d.delay = 300 * time.Millisecond })
	s := newServer(t, devs, fleetConfig(), serve.Config{HedgeAfter: time.Hour})
	defer s.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.Do(ctx, requestBatch(1), serve.Bulk)
	if !errors.Is(err, serve.ErrDeadline) {
		t.Fatalf("expired request returned %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("deadline return took %v — the caller waited out the slow device", elapsed)
	}
	if st := s.Stats(); st.Deadlines != 1 {
		t.Fatalf("deadline not counted: %+v", st)
	}
}

// TestTypedErrNoDevicesAfterServingFaults: serving-path faults must feed the
// circuit breaker (quarantining the device without a monitoring tick), and a
// fully quarantined fleet must answer ErrNoDevices.
func TestTypedErrNoDevicesAfterServingFaults(t *testing.T) {
	devs := testDevices(1)
	devs[0].set(func(d *servDevice) { d.crash = true })
	fcfg := fleetConfig()
	fcfg.BreakerOpenAfter = 2
	s := newServer(t, devs, fcfg, serve.Config{})
	defer s.Close()

	for i := 0; i < 2; i++ {
		if _, err := s.Do(context.Background(), requestBatch(1), serve.Bulk); !errors.Is(err, serve.ErrFaulted) {
			t.Fatalf("request %d on crashing device returned %v, want ErrFaulted", i, err)
		}
	}
	if q := s.Quarantined(); len(q) != 1 {
		t.Fatalf("two serving faults did not quarantine the device: quarantined=%v", q)
	}
	_, err := s.Do(context.Background(), requestBatch(1), serve.Bulk)
	if !errors.Is(err, serve.ErrNoDevices) {
		t.Fatalf("quarantined fleet returned %v, want ErrNoDevices", err)
	}
	st := s.Stats()
	if st.FaultFailures != 2 || st.NoDevices != 1 || st.Admitted != st.Terminal() {
		t.Fatalf("stats: %+v", st)
	}
}

// TestHedgedRequestServedByAlternate: a silent primary must not stall the
// request — after HedgeAfter the hedge lands on the other device and wins.
func TestHedgedRequestServedByAlternate(t *testing.T) {
	devs := testDevices(2)
	devs[0].set(func(d *servDevice) { d.delay = 400 * time.Millisecond })
	s := newServer(t, devs, fleetConfig(), serve.Config{HedgeAfter: 10 * time.Millisecond})
	defer s.Close()

	start := time.Now()
	resp, err := s.Do(context.Background(), requestBatch(1), serve.Bulk)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Hedged || resp.Device != "dev-1" {
		t.Fatalf("response not from the hedge: %+v", resp)
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Fatalf("hedged answer took %v — the hedge did not cut the slow primary's latency", elapsed)
	}
	if st := s.Stats(); st.Hedges != 1 || st.Served != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestRetriedOnFaultedPrimary: a mid-request crash must be retried once on a
// different device and reported into the breaker, invisibly to the caller.
func TestRetriedOnFaultedPrimary(t *testing.T) {
	devs := testDevices(2)
	devs[0].set(func(d *servDevice) { d.crash = true })
	s := newServer(t, devs, fleetConfig(), serve.Config{HedgeAfter: time.Hour})
	defer s.Close()

	resp, err := s.Do(context.Background(), requestBatch(1), serve.Bulk)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Retried || resp.Device != "dev-1" {
		t.Fatalf("response not from the retry: %+v", resp)
	}
	if st := s.Stats(); st.Retries != 1 || st.Served != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestDegradedServingFlagged: a device the monitor has confirmed Degraded
// keeps serving, but every response says so.
func TestDegradedServingFlagged(t *testing.T) {
	devs := testDevices(1)
	devs[0].set(func(d *servDevice) { d.shift = 0.04 }) // between DegradedAt and ImpairedAt
	s := newServer(t, devs, fleetConfig(), serve.Config{})
	defer s.Close()

	for i := 0; i < 2; i++ { // EscalateAfter=2 rounds to confirm
		if _, err := s.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := s.Do(context.Background(), requestBatch(1), serve.Bulk)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.Status != monitor.Degraded {
		t.Fatalf("degraded device served an unflagged response: %+v", resp)
	}
	if st := s.Stats(); st.ServedDegraded != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestMonitorPriorityPreemptsBulk: with the lone worker pinned and both
// queues loaded, the monitor-class request must be served before the queued
// bulk ones.
func TestMonitorPriorityPreemptsBulk(t *testing.T) {
	devs := testDevices(1)
	gate := make(chan struct{})
	devs[0].set(func(d *servDevice) { d.gate = gate })
	s := newServer(t, devs, fleetConfig(), serve.Config{
		Workers: 1, DefaultDeadline: 10 * time.Second})
	defer s.Close()

	var wg sync.WaitGroup
	do := func(tag float64, prio serve.Priority) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Do(context.Background(), requestBatch(tag), prio)
		}()
	}
	do(0, serve.Bulk) // pins the worker behind the gate
	waitFor(t, func() bool { return len(devs[0].callLog()) == 1 })
	do(1, serve.Bulk)
	do(2, serve.Bulk)
	do(9, serve.Monitor)
	waitFor(t, func() bool { return s.Stats().Admitted == 4 })

	close(gate)
	wg.Wait()
	order := devs[0].callLog()
	pos := map[float64]int{}
	for i, tag := range order {
		if _, seen := pos[tag]; !seen {
			pos[tag] = i
		}
	}
	if pos[9] > pos[1] || pos[9] > pos[2] {
		t.Fatalf("monitor request served at position %d, after bulk (order %v)", pos[9], order)
	}
}

// TestCloseDrainsWithoutLeaks: Close answers every admitted request, rejects
// new ones with ErrClosed, and leaves no goroutine behind.
func TestCloseDrainsWithoutLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	devs := testDevices(2)
	devs[1].set(func(d *servDevice) { d.delay = 20 * time.Millisecond })
	s := newServer(t, devs, fleetConfig(), serve.Config{Workers: 2, HedgeAfter: 5 * time.Millisecond})

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Do(context.Background(), requestBatch(float64(i)), serve.Bulk)
		}(i)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Do(context.Background(), requestBatch(99), serve.Bulk); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("Do after Close returned %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close failed:", err)
	}

	st := s.Stats()
	if st.Admitted != st.Terminal() {
		t.Fatalf("silent drops: admitted %d, terminal %d", st.Admitted, st.Terminal())
	}
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before+2 })
}

// TestCloseConcurrentCallersShareOneDrain: Close must be idempotent under
// concurrent callers — exactly one drain runs, every caller (racing or late)
// blocks until it completes and returns the first call's result, and the
// drained-counter snapshot is identical for all of them.
func TestCloseConcurrentCallersShareOneDrain(t *testing.T) {
	devs := testDevices(2)
	devs[0].set(func(d *servDevice) { d.delay = 10 * time.Millisecond })
	s := newServer(t, devs, fleetConfig(), serve.Config{Workers: 2})

	var reqWG sync.WaitGroup
	for i := 0; i < 12; i++ {
		reqWG.Add(1)
		go func(i int) {
			defer reqWG.Done()
			s.Do(context.Background(), requestBatch(float64(i)), serve.Bulk)
		}(i)
	}
	waitFor(t, func() bool { return s.Stats().Admitted >= 4 })

	const closers = 8
	errs := make([]error, closers)
	snaps := make([]serve.Stats, closers)
	var closeWG sync.WaitGroup
	for i := 0; i < closers; i++ {
		closeWG.Add(1)
		go func(i int) {
			defer closeWG.Done()
			errs[i] = s.Close()
			snaps[i], _ = s.Drained()
		}(i)
	}
	closeWG.Wait()
	reqWG.Wait()

	for i := 0; i < closers; i++ {
		if errs[i] != errs[0] {
			t.Fatalf("closer %d returned %v, closer 0 returned %v — drain result not shared", i, errs[i], errs[0])
		}
		if snaps[i] != snaps[0] {
			t.Fatalf("closer %d saw drained stats %+v, closer 0 saw %+v", i, snaps[i], snaps[0])
		}
	}
	if _, ok := s.Drained(); !ok {
		t.Fatal("Drained reports not-closed after Close")
	}
	if st := s.Stats(); st.Admitted != st.Terminal() {
		t.Fatalf("drain left silent drops: %+v", st)
	}
}

// TestDrainedBeforeClose: Drained on a live server reports ok=false and must
// not itself trigger a drain.
func TestDrainedBeforeClose(t *testing.T) {
	s := newServer(t, testDevices(1), fleetConfig(), serve.Config{})
	defer s.Close()
	if _, ok := s.Drained(); ok {
		t.Fatal("Drained reported a drain on a live server")
	}
	if _, err := s.Do(context.Background(), requestBatch(1), serve.Bulk); err != nil {
		t.Fatalf("server stopped serving after Drained probe: %v", err)
	}
}

// TestNoDevicesCarriesFleetSentinel: the ErrNoDevices the server surfaces
// must wrap the router's typed ErrNoEligibleDevice so both layers' sentinels
// match the same error.
func TestNoDevicesCarriesFleetSentinel(t *testing.T) {
	devs := testDevices(1)
	devs[0].set(func(d *servDevice) { d.crash = true })
	fcfg := fleetConfig()
	fcfg.BreakerOpenAfter = 2
	s := newServer(t, devs, fcfg, serve.Config{})
	defer s.Close()

	for i := 0; i < 2; i++ { // trip the breaker via serving faults
		s.Do(context.Background(), requestBatch(1), serve.Bulk)
	}
	_, err := s.Do(context.Background(), requestBatch(1), serve.Bulk)
	if !errors.Is(err, serve.ErrNoDevices) {
		t.Fatalf("starved fleet returned %v, want ErrNoDevices", err)
	}
	if !errors.Is(err, fleet.ErrNoEligibleDevice) {
		t.Fatalf("ErrNoDevices %v does not wrap fleet.ErrNoEligibleDevice", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if err := (serve.Config{Workers: -1}).Validate(); err == nil {
		t.Fatal("negative Workers validated")
	}
	if err := (serve.Config{HedgeAfter: -time.Second}).Validate(); err == nil {
		t.Fatal("negative HedgeAfter validated")
	}
	if _, err := serve.New(nil, fleetConfig(), serve.Config{}, nil); err == nil {
		t.Fatal("empty fleet accepted")
	}
}

// waitFor polls cond with a hard 5s cap — the tests' only clock dependency.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
