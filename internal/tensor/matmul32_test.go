package tensor

import (
	"math"
	"testing"

	"reramtest/internal/rng"
)

// randF32 fills an m-element f32 slice from the repo RNG in [-1, 1).
func randF32(r *rng.RNG, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(r.Float64()*2 - 1)
	}
	return out
}

// widenF32 returns a widened f64 copy of a.
func widenF32(a []float32) []float64 {
	out := make([]float64, len(a))
	ConvertF32ToF64(out, a)
	return out
}

// f64MatMulOf runs the f64 reference kernel over widened copies of the f32
// operands — the oracle every f32 kernel is gated against.
func f64MatMulOf(a, b []float32, m, k, n int) []float64 {
	dst := make([]float64, m*n)
	MatMulSlices(dst, widenF32(a), widenF32(b), m, k, n)
	return dst
}

// dotErrBound is the standard forward-error bound for a k-term float32
// accumulation: |computed − exact| ≤ c·(k+2)·eps32·Σ|aᵢbᵢ|, with c covering
// the lane reduction. Expressed against the f64 oracle the same bound holds
// (the oracle's own error is ~2⁻²⁹ of it).
func dotErrBound(a, b []float32, k int) float64 {
	s := 0.0
	for p := 0; p < k; p++ {
		s += math.Abs(float64(a[p]) * float64(b[p]))
	}
	return 4 * float64(k+2) * 0x1p-24 * s
}

func checkF32VsOracle(t *testing.T, name string, got []float32, a, b []float32, m, k, n int) {
	t.Helper()
	want := f64MatMulOf(a, b, m, k, n)
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		bcol := make([]float32, k)
		for j := 0; j < n; j++ {
			for p := 0; p < k; p++ {
				bcol[p] = b[p*n+j]
			}
			e := math.Abs(float64(got[i*n+j]) - want[i*n+j])
			if bound := dotErrBound(arow, bcol, k); e > bound {
				t.Fatalf("%s (%d,%d,%d) elem (%d,%d): err %g exceeds bound %g", name, m, k, n, i, j, e, bound)
			}
		}
	}
}

func TestMatMulF32KernelsAgainstF64Oracle(t *testing.T) {
	r := rng.New(21)
	for _, d := range [][3]int{{1, 1, 1}, {3, 4, 5}, {7, 2, 9}, {16, 16, 16}, {5, 31, 2}, {4, 200, 6}} {
		m, k, n := d[0], d[1], d[2]
		a, b := randF32(r, m*k), randF32(r, k*n)
		dst := make([]float32, m*n)

		MatMulSlicesF32(dst, a, b, m, k, n)
		checkF32VsOracle(t, "MatMulSlicesF32", dst, a, b, m, k, n)
		base := append([]float32(nil), dst...)

		// tiled, row-ranged and pooled kernels promise bit-identity with the
		// plain kernel — same per-element fold order
		tiled := make([]float32, m*n)
		MatMulTiledSlicesF32(tiled, a, b, m, k, n)
		for i := range tiled {
			if tiled[i] != base[i] {
				t.Fatalf("MatMulTiledSlicesF32 diverges from MatMulSlicesF32 at %v elem %d", d, i)
			}
		}
		ranged := make([]float32, m*n)
		for lo := 0; lo < m; lo += 2 {
			hi := lo + 2
			if hi > m {
				hi = m
			}
			MatMulRowsIntoF32(ranged, a, b, m, k, n, lo, hi)
		}
		for i := range ranged {
			if ranged[i] != base[i] {
				t.Fatalf("MatMulRowsIntoF32 chunks diverge from MatMulSlicesF32 at %v elem %d", d, i)
			}
		}

		// dot-form aᵀ/bᵀ kernels get the analytic bound, not bit-identity
		bT := make([]float32, k*n)
		Transpose2DIntoF32(bT, b, k, n)
		dt := make([]float32, m*n)
		MatMulTransBSlicesF32(dt, a, bT, m, k, n)
		checkF32VsOracle(t, "MatMulTransBSlicesF32", dt, a, b, m, k, n)

		aT := make([]float32, m*k)
		Transpose2DIntoF32(aT, a, m, k)
		da := make([]float32, m*n)
		MatMulTransASlicesF32(da, aT, b, k, m, n)
		checkF32VsOracle(t, "MatMulTransASlicesF32", da, a, b, m, k, n)
	}
}

func TestMatMulParallelIntoF32MatchesSerial(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	r := rng.New(23)
	m, k, n := 13, 37, 11
	a, b := randF32(r, m*k), randF32(r, k*n)
	want := make([]float32, m*n)
	MatMulTiledSlicesF32(want, a, b, m, k, n)
	got := make([]float32, m*n)
	MatMulParallelIntoF32(p, got, a, b, m, k, n)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pooled f32 matmul diverges from serial at elem %d", i)
		}
	}
	MatMulParallelIntoF32(nil, got, a, b, m, k, n)
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("nil-pool path diverges from serial")
		}
	}
}

func TestDenseForwardF32FusionIsBitExact(t *testing.T) {
	r := rng.New(25)
	m, k, n := 6, 19, 8
	x, wT, bias := randF32(r, m*k), randF32(r, n*k), randF32(r, n)
	// separate passes: matmul, then bias, then relu — all on rounded f32
	sep := make([]float32, m*n)
	MatMulTransBSlicesF32(sep, x, wT, m, k, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			sep[i*n+j] += bias[j]
		}
	}
	noRelu := append([]float32(nil), sep...)
	for i, v := range sep {
		if v < 0 {
			sep[i] = 0
		}
	}
	fused := make([]float32, m*n)
	DenseForwardF32(fused, x, wT, bias, m, k, n, 0, m, true)
	for i := range fused {
		if fused[i] != sep[i] {
			t.Fatalf("fused relu epilogue changed bits at elem %d", i)
		}
	}
	DenseForwardF32(fused, x, wT, bias, m, k, n, 0, m, false)
	for i := range fused {
		if fused[i] != noRelu[i] {
			t.Fatalf("fused bias epilogue changed bits at elem %d", i)
		}
	}
}

func TestIm2ColIntoF32MatchesF64(t *testing.T) {
	g := ConvGeom{InC: 2, InH: 5, InW: 5, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	r := rng.New(27)
	srcLen := g.InC * g.InH * g.InW
	src := randF32(r, srcLen)
	outLen := g.InC * g.KH * g.KW * g.OutH() * g.OutW()
	got := make([]float32, outLen)
	Im2ColIntoF32(got, src, g)
	want := make([]float64, outLen)
	Im2ColInto(want, widenF32(src), g)
	for i := range got {
		if float64(got[i]) != want[i] {
			t.Fatalf("f32 im2col diverges from f64 window order at elem %d", i)
		}
	}
}

func TestTranspose2DIntoF32(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5, 6}
	got := make([]float32, 6)
	Transpose2DIntoF32(got, a, 2, 3)
	want := []float32{1, 4, 2, 5, 3, 6}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("transpose = %v, want %v", got, want)
		}
	}
}

func TestMatMulF32MismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"slices": func() { MatMulSlicesF32(make([]float32, 4), make([]float32, 3), make([]float32, 4), 2, 2, 2) },
		"transB": func() { MatMulTransBSlicesF32(make([]float32, 4), make([]float32, 4), make([]float32, 3), 2, 2, 2) },
		"dot":    func() { DotF32(make([]float32, 2), make([]float32, 3)) },
		"range":  func() { MatMulRowsIntoF32(make([]float32, 4), make([]float32, 4), make([]float32, 4), 2, 2, 2, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: shape mismatch did not panic", name)
				}
			}()
			f()
		}()
	}
}
