package tensor

import "fmt"

// MatMul computes the matrix product a·b for rank-2 tensors and returns a new
// (m×n) tensor. It panics if the inner dimensions disagree.
func MatMul(a, b *Tensor) *Tensor {
	m, k := mustMatrix("MatMul lhs", a)
	k2, n := mustMatrix("MatMul rhs", b)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a·b, reusing dst's storage. dst must be m×n.
//
// The kernel iterates in (i, k, j) order so the inner loop walks both b and
// dst contiguously — on a single core this is the difference between the
// training loop being usable and not.
func MatMulInto(dst, a, b *Tensor) {
	m, k := mustMatrix("MatMulInto lhs", a)
	k2, n := mustMatrix("MatMulInto rhs", b)
	dm, dn := mustMatrix("MatMulInto dst", dst)
	if k != k2 || dm != m || dn != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch dst%v = %v x %v", dst.shape, a.shape, b.shape))
	}
	MatMulSlices(dst.data, a.data, b.data, m, k, n)
}

// MatMulRowsInto computes output rows [lo, hi) of dst = a·b, leaving the
// other rows of dst untouched. a is m×k, b is k×n, dst is m×n. Disjoint row
// ranges write disjoint regions of dst, so callers may compute ranges
// concurrently; each row's summation order is identical to MatMulInto, so the
// result is bit-identical however the rows are partitioned.
func MatMulRowsInto(dst, a, b *Tensor, lo, hi int) {
	m, k := mustMatrix("MatMulRowsInto lhs", a)
	k2, n := mustMatrix("MatMulRowsInto rhs", b)
	AssertDims("MatMulRowsInto dst", dst, m, n)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulRowsInto inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	if lo < 0 || hi > m || lo > hi {
		panic(fmt.Sprintf("tensor: MatMulRowsInto row range [%d, %d) out of [0, %d)", lo, hi, m))
	}
	MatMulSlices(dst.data[lo*n:hi*n], a.data[lo*k:hi*k], b.data, hi-lo, k, n)
}

// MatMulSlices is the raw matmul kernel over bare slices: dst = a·b where a
// is m×k, b is k×n and dst is m×n, all row-major. It exists so workspace-
// reusing callers (the batch inference engine, the accelerator's im2col path)
// can multiply into sub-regions of preallocated buffers without building
// tensor headers. Every tensor-level matmul in this package delegates here,
// which is what makes the batched forward path bit-identical to the serial
// one: there is exactly one summation order.
func MatMulSlices(dst, a, b []float64, m, k, n int) {
	if len(a) != m*k || len(b) != k*n || len(dst) != m*n {
		panic(fmt.Sprintf("tensor: MatMulSlices length mismatch dst=%d a=%d b=%d for (%d×%d)·(%d×%d)",
			len(dst), len(a), len(b), m, k, k, n))
	}
	for i := 0; i < m; i++ {
		drow := dst[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
		arow := a[i*k : (i+1)*k]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulTransBInto computes dst = a·bᵀ where a is m×k and b is n×k.
func MatMulTransBInto(dst, a, b *Tensor) {
	m, k := mustMatrix("MatMulTransBInto lhs", a)
	n, k2 := mustMatrix("MatMulTransBInto rhs", b)
	dm, dn := mustMatrix("MatMulTransBInto dst", dst)
	if k != k2 || dm != m || dn != n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto shape mismatch dst%v = %v x %vᵀ", dst.shape, a.shape, b.shape))
	}
	ad, bd, dd := a.data, b.data, dst.data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		drow := dd[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			drow[j] = s
		}
	}
}

// MatMulTransAInto computes dst = aᵀ·b where a is k×m and b is k×n.
func MatMulTransAInto(dst, a, b *Tensor) {
	k, m := mustMatrix("MatMulTransAInto lhs", a)
	k2, n := mustMatrix("MatMulTransAInto rhs", b)
	dm, dn := mustMatrix("MatMulTransAInto dst", dst)
	if k != k2 || dm != m || dn != n {
		panic(fmt.Sprintf("tensor: MatMulTransAInto shape mismatch dst%v = %vᵀ x %v", dst.shape, a.shape, b.shape))
	}
	ad, bd, dd := a.data, b.data, dst.data
	for i := range dd {
		dd[i] = 0
	}
	for p := 0; p < k; p++ {
		arow := ad[p*m : (p+1)*m]
		brow := bd[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dd[i*n : (i+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatVec computes the matrix-vector product a·x for a rank-2 (m×k) tensor and
// a length-k vector, returning a length-m vector. This is the operation a
// ReRAM crossbar performs in the analog domain.
func MatVec(a *Tensor, x []float64) []float64 {
	m, k := mustMatrix("MatVec lhs", a)
	if len(x) != k {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v x vec(%d)", a.shape, len(x)))
	}
	out := make([]float64, m)
	ad := a.data
	for i := 0; i < m; i++ {
		row := ad[i*k : (i+1)*k]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Transpose2D returns the transpose of a rank-2 tensor as a new tensor.
func Transpose2D(a *Tensor) *Tensor {
	m, n := mustMatrix("Transpose2D", a)
	out := New(n, m)
	Transpose2DInto(out, a)
	return out
}

// Transpose2DInto writes aᵀ into dst, reusing dst's storage. a is m×n and dst
// must be n×m.
func Transpose2DInto(dst, a *Tensor) {
	m, n := mustMatrix("Transpose2DInto src", a)
	AssertDims("Transpose2DInto dst", dst, n, m)
	ad, dd := a.data, dst.data
	for i := 0; i < m; i++ {
		row := ad[i*n : (i+1)*n]
		for j, v := range row {
			dd[j*m+i] = v
		}
	}
}

func mustMatrix(op string, t *Tensor) (rows, cols int) {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: %s requires a rank-2 tensor, got shape %v", op, t.shape))
	}
	return t.shape[0], t.shape[1]
}
