package tensor

import "fmt"

// MatMul computes the matrix product a·b for rank-2 tensors and returns a new
// (m×n) tensor. It panics if the inner dimensions disagree.
func MatMul(a, b *Tensor) *Tensor {
	m, k := mustMatrix("MatMul lhs", a)
	k2, n := mustMatrix("MatMul rhs", b)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a·b, reusing dst's storage. dst must be m×n.
//
// The kernel iterates in (i, k, j) order so the inner loop walks both b and
// dst contiguously — on a single core this is the difference between the
// training loop being usable and not.
func MatMulInto(dst, a, b *Tensor) {
	m, k := mustMatrix("MatMulInto lhs", a)
	k2, n := mustMatrix("MatMulInto rhs", b)
	dm, dn := mustMatrix("MatMulInto dst", dst)
	if k != k2 || dm != m || dn != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch dst%v = %v x %v", dst.shape, a.shape, b.shape))
	}
	MatMulSlices(dst.data, a.data, b.data, m, k, n)
}

// MatMulRowsInto computes output rows [lo, hi) of dst = a·b, leaving the
// other rows of dst untouched. a is m×k, b is k×n, dst is m×n. Disjoint row
// ranges write disjoint regions of dst, so callers may compute ranges
// concurrently; each row's summation order is identical to MatMulInto, so the
// result is bit-identical however the rows are partitioned.
func MatMulRowsInto(dst, a, b *Tensor, lo, hi int) {
	m, k := mustMatrix("MatMulRowsInto lhs", a)
	k2, n := mustMatrix("MatMulRowsInto rhs", b)
	AssertDims("MatMulRowsInto dst", dst, m, n)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulRowsInto inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	if lo < 0 || hi > m || lo > hi {
		panic(fmt.Sprintf("tensor: MatMulRowsInto row range [%d, %d) out of [0, %d)", lo, hi, m))
	}
	MatMulTiledSlices(dst.data[lo*n:hi*n], a.data[lo*k:hi*k], b.data, hi-lo, k, n)
}

// MatMulTiledSlices computes exactly what MatMulSlices computes — same
// per-element summation order, same zero-skip, bit-identical result — but
// visits b in row blocks sized to stay cache-resident while the block is
// applied to every sample, so a large b is streamed from memory once per call
// instead of once per sample. The engines route their batched matmuls here;
// the legacy per-layer path keeps the untiled kernel, which is what the
// golden-equivalence suites compare against.
func MatMulTiledSlices(dst, a, b []float64, m, k, n int) {
	blk := 2048 / n // ~16KB of b rows live across the inner sample sweep
	if m <= 1 || blk >= k {
		MatMulSlices(dst, a, b, m, k, n)
		return
	}
	if blk < 16 {
		blk = 16
	}
	if len(a) != m*k || len(b) != k*n || len(dst) != m*n {
		panic(fmt.Sprintf("tensor: MatMulTiledSlices length mismatch dst=%d a=%d b=%d for (%d×%d)·(%d×%d)",
			len(dst), len(a), len(b), m, k, k, n))
	}
	for j := range dst {
		dst[j] = 0
	}
	for p0 := 0; p0 < k; p0 += blk {
		p1 := p0 + blk
		if p1 > k {
			p1 = k
		}
		// two samples per sweep: each loaded b row feeds two independent
		// accumulator rows, doubling the work per load without touching any
		// element's addition order
		i := 0
		for ; i+1 < m; i += 2 {
			d0 := dst[i*n : (i+1)*n]
			d1 := dst[(i+1)*n : (i+2)*n]
			a0 := a[i*k+p0 : i*k+p1]
			a1 := a[(i+1)*k+p0 : (i+1)*k+p1]
			for pi, av0 := range a0 {
				av1 := a1[pi]
				brow := b[(p0+pi)*n : (p0+pi+1)*n]
				if av0 != 0 && av1 != 0 {
					for j, bv := range brow {
						d0[j] += av0 * bv
						d1[j] += av1 * bv
					}
				} else if av0 != 0 {
					for j, bv := range brow {
						d0[j] += av0 * bv
					}
				} else if av1 != 0 {
					for j, bv := range brow {
						d1[j] += av1 * bv
					}
				}
			}
		}
		if i < m {
			drow := dst[i*n : (i+1)*n]
			arow := a[i*k+p0 : i*k+p1]
			for pi, av := range arow {
				if av == 0 {
					continue
				}
				brow := b[(p0+pi)*n : (p0+pi+1)*n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	}
}

// MatMulSlices is the raw matmul kernel over bare slices: dst = a·b where a
// is m×k, b is k×n and dst is m×n, all row-major. It exists so workspace-
// reusing callers (the batch inference engine, the accelerator's im2col path)
// can multiply into sub-regions of preallocated buffers without building
// tensor headers. Every tensor-level matmul in this package delegates here,
// which is what makes the batched forward path bit-identical to the serial
// one: there is exactly one summation order.
func MatMulSlices(dst, a, b []float64, m, k, n int) {
	if len(a) != m*k || len(b) != k*n || len(dst) != m*n {
		panic(fmt.Sprintf("tensor: MatMulSlices length mismatch dst=%d a=%d b=%d for (%d×%d)·(%d×%d)",
			len(dst), len(a), len(b), m, k, k, n))
	}
	for i := 0; i < m; i++ {
		drow := dst[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
		arow := a[i*k : (i+1)*k]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulTransBInto computes dst = a·bᵀ where a is m×k and b is n×k.
func MatMulTransBInto(dst, a, b *Tensor) {
	m, k := mustMatrix("MatMulTransBInto lhs", a)
	n, k2 := mustMatrix("MatMulTransBInto rhs", b)
	dm, dn := mustMatrix("MatMulTransBInto dst", dst)
	if k != k2 || dm != m || dn != n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto shape mismatch dst%v = %v x %vᵀ", dst.shape, a.shape, b.shape))
	}
	MatMulTransBSlices(dst.data, a.data, b.data, m, k, n)
}

// MatMulTransBSlices is the raw dst = a·bᵀ kernel over bare slices: a is m×k,
// b is n×k and dst is m×n, all row-major. Each dst element is accumulated in
// a register over p in increasing order, so the result is independent of how
// callers partition the output — the train engine's per-sample backward
// kernels (conv dW, dense dx) multiply into shard rows of preallocated
// workspaces through this single kernel, which is what keeps the batched
// gradient bit-identical to the per-layer training path.
func MatMulTransBSlices(dst, a, b []float64, m, k, n int) {
	if len(a) != m*k || len(b) != n*k || len(dst) != m*n {
		panic(fmt.Sprintf("tensor: MatMulTransBSlices length mismatch dst=%d a=%d b=%d for (%d×%d)·(%d×%d)ᵀ",
			len(dst), len(a), len(b), m, k, n, k))
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			drow[j] = s
		}
	}
}

// MatMulNoSkipSlices computes dst = a·b (a m×k, b k×n, dst m×n, row-major)
// with every element's terms summed over p ascending and NO zero-skip — the
// exact per-element addition chain of a MatMulTransBSlices call against bᵀ,
// which folds each term into a register dot product. Accumulating in the dst
// row instead pipelines across the n independent elements rather than
// serializing on floating-point add latency, so callers that can afford a
// transposed operand (the train engine's dL/dx kernels) get the same bits
// several times faster.
func MatMulNoSkipSlices(dst, a, b []float64, m, k, n int) {
	if len(a) != m*k || len(b) != k*n || len(dst) != m*n {
		panic(fmt.Sprintf("tensor: MatMulNoSkipSlices length mismatch dst=%d a=%d b=%d for (%d×%d)·(%d×%d)",
			len(dst), len(a), len(b), m, k, k, n))
	}
	for i := 0; i < m; i++ {
		drow := dst[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
		arow := a[i*k : (i+1)*k]
		for p, av := range arow {
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulTransAInto computes dst = aᵀ·b where a is k×m and b is k×n.
func MatMulTransAInto(dst, a, b *Tensor) {
	k, m := mustMatrix("MatMulTransAInto lhs", a)
	k2, n := mustMatrix("MatMulTransAInto rhs", b)
	dm, dn := mustMatrix("MatMulTransAInto dst", dst)
	if k != k2 || dm != m || dn != n {
		panic(fmt.Sprintf("tensor: MatMulTransAInto shape mismatch dst%v = %vᵀ x %v", dst.shape, a.shape, b.shape))
	}
	MatMulTransASlices(dst.data, a.data, b.data, k, m, n)
}

// MatMulTransASlices is the raw dst = aᵀ·b kernel over bare slices: a is k×m,
// b is k×n and dst is m×n, all row-major. dst is zeroed first and accumulated
// over p in increasing order with the same zero-skip as MatMulTransAInto
// (which delegates here), so per-sample calls (k = 1) compose into exactly
// the batch-level accumulation when folded in sample order.
func MatMulTransASlices(dst, a, b []float64, k, m, n int) {
	if len(a) != k*m || len(b) != k*n || len(dst) != m*n {
		panic(fmt.Sprintf("tensor: MatMulTransASlices length mismatch dst=%d a=%d b=%d for (%d×%d)ᵀ·(%d×%d)",
			len(dst), len(a), len(b), k, m, k, n))
	}
	for i := range dst {
		dst[i] = 0
	}
	for p := 0; p < k; p++ {
		arow := a[p*m : (p+1)*m]
		brow := b[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst[i*n : (i+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatVec computes the matrix-vector product a·x for a rank-2 (m×k) tensor and
// a length-k vector, returning a length-m vector. This is the operation a
// ReRAM crossbar performs in the analog domain.
func MatVec(a *Tensor, x []float64) []float64 {
	m, k := mustMatrix("MatVec lhs", a)
	if len(x) != k {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v x vec(%d)", a.shape, len(x)))
	}
	out := make([]float64, m)
	ad := a.data
	for i := 0; i < m; i++ {
		row := ad[i*k : (i+1)*k]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Transpose2D returns the transpose of a rank-2 tensor as a new tensor.
func Transpose2D(a *Tensor) *Tensor {
	m, n := mustMatrix("Transpose2D", a)
	out := New(n, m)
	Transpose2DInto(out, a)
	return out
}

// Transpose2DInto writes aᵀ into dst, reusing dst's storage. a is m×n and dst
// must be n×m.
func Transpose2DInto(dst, a *Tensor) {
	m, n := mustMatrix("Transpose2DInto src", a)
	AssertDims("Transpose2DInto dst", dst, n, m)
	ad, dd := a.data, dst.data
	for i := 0; i < m; i++ {
		row := ad[i*n : (i+1)*n]
		for j, v := range row {
			dd[j*m+i] = v
		}
	}
}

func mustMatrix(op string, t *Tensor) (rows, cols int) {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: %s requires a rank-2 tensor, got shape %v", op, t.shape))
	}
	return t.shape[0], t.shape[1]
}
