package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// Pool is a fixed set of worker goroutines that execute contiguous index
// ranges of data-parallel kernels. It exists for the batch inference engine:
// layer kernels split their batch across pool chunks, and because every chunk
// is a disjoint row range with an unchanged per-row summation order, the
// parallel result is bit-identical to the serial one.
//
// A Pool is safe for concurrent use: each Run call carries its own completion
// WaitGroup, so independent engines can share one pool. The jobs it executes
// are plain value structs sent over a channel — the steady state makes no
// allocations.
type Pool struct {
	workers int
	jobs    chan poolJob
	closed  sync.Once
}

type poolJob struct {
	body   func(chunk, lo, hi int)
	chunk  int
	lo, hi int
	done   *sync.WaitGroup
}

// NewPool starts a pool with the given number of workers. workers <= 1
// returns a degenerate pool that runs everything inline on the caller's
// goroutine (no goroutines are started), so serial configurations pay no
// scheduling cost.
func NewPool(workers int) *Pool {
	p := &Pool{workers: workers}
	if workers <= 1 {
		p.workers = 1
		return p
	}
	p.jobs = make(chan poolJob, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for j := range p.jobs {
				j.body(j.chunk, j.lo, j.hi)
				j.done.Done()
			}
		}()
	}
	return p
}

// Workers returns the pool's worker count (1 for an inline pool).
func (p *Pool) Workers() int { return p.workers }

// Close stops the workers. Runs must not be in flight or issued afterwards.
func (p *Pool) Close() {
	p.closed.Do(func() {
		if p.jobs != nil {
			close(p.jobs)
		}
	})
}

var (
	sharedPoolOnce sync.Once
	sharedPool     *Pool
)

// SharedPool returns the process-wide pool, sized to GOMAXPROCS and started
// on first use. On a single-core host it is an inline pool.
func SharedPool() *Pool {
	sharedPoolOnce.Do(func() {
		sharedPool = NewPool(runtime.GOMAXPROCS(0))
	})
	return sharedPool
}

// Run splits [0, n) into at most `chunks` contiguous ranges and executes
// body(chunk, lo, hi) for each, returning when all ranges are done. It is a
// convenience wrapper around RunWith with a local WaitGroup; hot paths that
// must not allocate should hold their own WaitGroup and call RunWith.
func (p *Pool) Run(n, chunks int, body func(chunk, lo, hi int)) {
	var wg sync.WaitGroup
	p.RunWith(&wg, n, chunks, body)
}

// RunWith is Run with a caller-owned WaitGroup (it must be idle). The caller's
// goroutine executes chunk 0 itself while the workers run the rest, so an
// inline pool or a single chunk degrades to a plain function call.
//
// Ranges are balanced: the first n%chunks ranges get one extra element.
func (p *Pool) RunWith(wg *sync.WaitGroup, n, chunks int, body func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunks > p.workers {
		chunks = p.workers
	}
	if chunks > n {
		chunks = n
	}
	if chunks <= 1 {
		body(0, 0, n)
		return
	}
	base, rem := n/chunks, n%chunks
	// chunk 0 runs on the caller; compute its bounds first
	hi0 := base
	if rem > 0 {
		hi0++
	}
	lo := hi0
	wg.Add(chunks - 1)
	for c := 1; c < chunks; c++ {
		size := base
		if c < rem {
			size++
		}
		p.jobs <- poolJob{body: body, chunk: c, lo: lo, hi: lo + size, done: wg}
		lo += size
	}
	if lo != n {
		panic(fmt.Sprintf("tensor: pool chunking covered [0, %d) of [0, %d)", lo, n))
	}
	body(0, 0, hi0)
	wg.Wait()
}

// MatMulParallelInto computes dst = a·b with output rows tiled across the
// pool. Each worker computes a disjoint row range via the shared MatMulSlices
// kernel, so the result is bit-identical to MatMulInto regardless of the
// worker count. A nil pool runs serially.
func MatMulParallelInto(p *Pool, dst, a, b *Tensor) {
	m, k := mustMatrix("MatMulParallelInto lhs", a)
	k2, n := mustMatrix("MatMulParallelInto rhs", b)
	AssertDims("MatMulParallelInto dst", dst, m, n)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulParallelInto inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	if p == nil || p.workers <= 1 {
		MatMulSlices(dst.data, a.data, b.data, m, k, n)
		return
	}
	dd, ad, bd := dst.data, a.data, b.data
	p.Run(m, p.workers, func(_, lo, hi int) {
		MatMulSlices(dd[lo*n:hi*n], ad[lo*k:hi*k], bd, hi-lo, k, n)
	})
}
