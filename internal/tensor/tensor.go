// Package tensor implements the dense numeric arrays that every other layer
// of the reproduction is built on: the neural-network layers, the ReRAM
// crossbar simulator, the fault injectors and the test-pattern generators all
// operate on tensor.Tensor values.
//
// Tensors are row-major float64 arrays with an explicit shape. The package
// deliberately keeps the surface small and allocation behaviour predictable:
// hot paths (matmul, im2col) take destination buffers so the training loop
// can reuse memory.
package tensor

import (
	"fmt"
	"math"

	"reramtest/internal/rng"
)

// Tensor is a dense, row-major, float64 n-dimensional array.
type Tensor struct {
	shape []int
	data  []float64
}

// New allocates a zero-filled tensor with the given shape. A zero-dimensional
// tensor (no axes) holds a single scalar.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape volume.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (volume %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of the given shape filled with 1.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Randn returns a tensor filled with Gaussian samples drawn from r.
func Randn(r *rng.RNG, mean, std float64, shape ...int) *Tensor {
	t := New(shape...)
	r.FillNormal(t.data, mean, std)
	return t
}

// RandUniform returns a tensor filled with uniform samples in [lo, hi).
func RandUniform(r *rng.RNG, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	r.FillUniform(t.data, lo, hi)
	return t
}

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of axes.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice in row-major order. Mutating it mutates the
// tensor.
func (t *Tensor) Data() []float64 { return t.data }

// offset computes the row-major linear index of idx.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match rank-%d shape %v", idx, len(t.shape), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set writes the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's data into t. Shapes must have equal volume.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom volume mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.data, src.data)
}

// Reshape returns a view sharing t's data with a new shape of equal volume.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (volume %d) to %v (volume %d)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// AddInPlace adds o element-wise into t.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	checkSameVolume("AddInPlace", t, o)
	for i, v := range o.data {
		t.data[i] += v
	}
	return t
}

// SubInPlace subtracts o element-wise from t.
func (t *Tensor) SubInPlace(o *Tensor) *Tensor {
	checkSameVolume("SubInPlace", t, o)
	for i, v := range o.data {
		t.data[i] -= v
	}
	return t
}

// MulInPlace multiplies t element-wise by o (Hadamard product).
func (t *Tensor) MulInPlace(o *Tensor) *Tensor {
	checkSameVolume("MulInPlace", t, o)
	for i, v := range o.data {
		t.data[i] *= v
	}
	return t
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// AxpyInPlace performs t += alpha * o.
func (t *Tensor) AxpyInPlace(alpha float64, o *Tensor) *Tensor {
	checkSameVolume("AxpyInPlace", t, o)
	for i, v := range o.data {
		t.data[i] += alpha * v
	}
	return t
}

// Add returns t + o as a new tensor.
func (t *Tensor) Add(o *Tensor) *Tensor { return t.Clone().AddInPlace(o) }

// Sub returns t - o as a new tensor.
func (t *Tensor) Sub(o *Tensor) *Tensor { return t.Clone().SubInPlace(o) }

// Mul returns the Hadamard product t ⊙ o as a new tensor.
func (t *Tensor) Mul(o *Tensor) *Tensor { return t.Clone().MulInPlace(o) }

// Scale returns s·t as a new tensor.
func (t *Tensor) Scale(s float64) *Tensor { return t.Clone().ScaleInPlace(s) }

// Apply replaces every element x with f(x).
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Map returns a new tensor with f applied element-wise.
func (t *Tensor) Map(f func(float64) float64) *Tensor {
	return t.Clone().Apply(f)
}

// ClampInPlace limits every element to [lo, hi].
func (t *Tensor) ClampInPlace(lo, hi float64) *Tensor {
	for i, v := range t.data {
		if v < lo {
			t.data[i] = lo
		} else if v > hi {
			t.data[i] = hi
		}
	}
	return t
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Std returns the population standard deviation of all elements.
func (t *Tensor) Std() float64 {
	if len(t.data) == 0 {
		return 0
	}
	m := t.Mean()
	s := 0.0
	for _, v := range t.data {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(t.data)))
}

// Min returns the smallest element.
func (t *Tensor) Min() float64 {
	m := math.Inf(1)
	for _, v := range t.data {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest element.
func (t *Tensor) Max() float64 {
	m := math.Inf(-1)
	for _, v := range t.data {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the linear index of the largest element (first on ties).
func (t *Tensor) ArgMax() int {
	best, bi := math.Inf(-1), 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// L1Dist returns the mean absolute difference between t and o.
func (t *Tensor) L1Dist(o *Tensor) float64 {
	checkSameVolume("L1Dist", t, o)
	s := 0.0
	for i, v := range t.data {
		s += math.Abs(v - o.data[i])
	}
	return s / float64(len(t.data))
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Equal reports whether t and o have identical shapes and elements.
func (t *Tensor) Equal(o *Tensor) bool {
	if !sameShape(t.shape, o.shape) {
		return false
	}
	for i, v := range t.data {
		if v != o.data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether t and o have identical shapes and elements within
// absolute tolerance tol.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	if !sameShape(t.shape, o.shape) {
		return false
	}
	for i, v := range t.data {
		if math.Abs(v-o.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a compact description, not the full contents.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkSameVolume(op string, a, b *Tensor) {
	if len(a.data) != len(b.data) {
		panic(fmt.Sprintf("tensor: %s volume mismatch %v vs %v", op, a.shape, b.shape))
	}
}
