package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"reramtest/internal/rng"
)

func TestConvGeomOutputDims(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 28, InW: 28, KH: 5, KW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2}
	if g.OutH() != 28 || g.OutW() != 28 {
		t.Fatalf("same-padding 5x5: out %dx%d, want 28x28", g.OutH(), g.OutW())
	}
	g2 := ConvGeom{InC: 3, InH: 32, InW: 32, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	if g2.OutH() != 16 || g2.OutW() != 16 {
		t.Fatalf("2x2 stride-2: out %dx%d, want 16x16", g2.OutH(), g2.OutW())
	}
}

func TestConvGeomValidate(t *testing.T) {
	good := ConvGeom{InC: 1, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 1, StrideW: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	for _, bad := range []ConvGeom{
		{InC: 0, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 1, StrideW: 1},
		{InC: 1, InH: 4, InW: 4, KH: 0, KW: 2, StrideH: 1, StrideW: 1},
		{InC: 1, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 0, StrideW: 1},
		{InC: 1, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 1, StrideW: 1, PadH: -1},
		{InC: 1, InH: 2, InW: 2, KH: 5, KW: 5, StrideH: 1, StrideW: 1},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("invalid geometry %+v accepted", bad)
		}
	}
}

func TestIm2Col1x1Identity(t *testing.T) {
	// a 1×1 kernel's column matrix is just the image flattened per channel
	g := ConvGeom{InC: 2, InH: 3, InW: 3, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
	src := FromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18}, 18)
	dst := New(2, 9)
	Im2Col(dst, src, g)
	if !dst.Reshape(18).Equal(src) {
		t.Fatalf("1x1 im2col is not identity: %v", dst.Data())
	}
}

func TestIm2ColKnownWindow(t *testing.T) {
	// 2×2 kernel over a 3×3 single-channel image, stride 1, no padding
	g := ConvGeom{InC: 1, InH: 3, InW: 3, KH: 2, KW: 2, StrideH: 1, StrideW: 1}
	src := FromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9}, 9)
	dst := New(4, 4)
	Im2Col(dst, src, g)
	// column p corresponds to output position p; row r to kernel offset r
	want := [][]float64{
		{1, 2, 4, 5}, // kernel (0,0)
		{2, 3, 5, 6}, // kernel (0,1)
		{4, 5, 7, 8}, // kernel (1,0)
		{5, 6, 8, 9}, // kernel (1,1)
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if dst.At(r, c) != want[r][c] {
				t.Fatalf("im2col[%d][%d]=%v, want %v", r, c, dst.At(r, c), want[r][c])
			}
		}
	}
}

func TestIm2ColZeroPadding(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	src := FromSlice([]float64{1, 2, 3, 4}, 4)
	dst := New(9, 4)
	Im2Col(dst, src, g)
	// top-left output position, kernel offset (0,0) looks at (-1,-1): padded 0
	if dst.At(0, 0) != 0 {
		t.Fatalf("padded region not zero: %v", dst.At(0, 0))
	}
	// centre of kernel at output (0,0) is input (0,0) = 1
	if dst.At(4, 0) != 1 {
		t.Fatalf("kernel centre wrong: %v", dst.At(4, 0))
	}
}

// TestCol2ImAdjoint verifies the defining property of the adjoint:
// ⟨Im2Col(x), y⟩ = ⟨x, Col2Im(y)⟩ for all x, y.
func TestCol2ImAdjoint(t *testing.T) {
	geoms := []ConvGeom{
		{InC: 1, InH: 5, InW: 5, KH: 3, KW: 3, StrideH: 1, StrideW: 1},
		{InC: 2, InH: 6, InW: 4, KH: 2, KW: 2, StrideH: 2, StrideW: 2},
		{InC: 3, InH: 5, InW: 5, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
	}
	for gi, g := range geoms {
		err := quick.Check(func(seed int64) bool {
			r := rng.New(seed)
			rows := g.InC * g.KH * g.KW
			cols := g.OutH() * g.OutW()
			x := RandUniform(r, -1, 1, g.InC*g.InH*g.InW)
			y := RandUniform(r, -1, 1, rows*cols)
			ix := New(rows, cols)
			Im2Col(ix, x, g)
			cy := New(g.InC * g.InH * g.InW)
			Col2Im(cy, y.Reshape(rows, cols), g)
			return math.Abs(dot(ix.Data(), y.Data())-dot(x.Data(), cy.Data())) < 1e-9
		}, &quick.Config{MaxCount: 20})
		if err != nil {
			t.Errorf("geometry %d: %v", gi, err)
		}
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func TestCol2ImAccumulatesOverlaps(t *testing.T) {
	// 2×2 kernel stride 1 over 3×3: centre pixel (1,1) is covered by all 4
	// windows, so scattering all-ones columns back accumulates 4 there.
	g := ConvGeom{InC: 1, InH: 3, InW: 3, KH: 2, KW: 2, StrideH: 1, StrideW: 1}
	cols := Ones(4, 4)
	img := New(9)
	Col2Im(img, cols, g)
	if img.Data()[4] != 4 {
		t.Fatalf("centre accumulation %v, want 4", img.Data()[4])
	}
	if img.Data()[0] != 1 {
		t.Fatalf("corner accumulation %v, want 1", img.Data()[0])
	}
}
