package tensor

import (
	"fmt"
	"math"
)

// This file is the int8 half of the multi-precision kernel tier: per-row
// affine activation quantization, per-column symmetric weight quantization,
// and an int8×int8→int32 matmul with the zero-point correction folded in
// through precomputed weight row sums. The grid mirrors the 8-bit DAC/ADC
// converters the reram model defaults to (Config.DACBits/ADCBits): inputs
// pass through a 256-level affine code exactly like samples through a DAC,
// accumulation is integral like charge on a bitline, and the dequantization
// happens once per output in float64 like an ADC readout rescale.
//
// Exactness contract: int8 products are ≤ 2¹⁴ and int32 sums of ≤ 2¹⁶ of
// them stay below 2³⁰, so every intermediate here is exactly representable
// in float64. The tier is therefore gated on *bitwise equality* against a
// model-level oracle that quantizes to the same grid and runs the integer
// arithmetic through the f64 reference kernels — see DequantI8.

// MaxI8K is the largest inner dimension the int8 kernels accept: beyond it
// the int32 accumulator (≤ 127·255·k plus the zero-point correction of the
// same magnitude) could overflow. Real layers are orders of magnitude under
// this; the engines reject I8 plans over wider layers with a typed error.
const MaxI8K = 1 << 16

// RowQuantI8 carries the affine code of one quantized activation row:
// x ≈ Scale · (q − Zero) with q ∈ [−128, 127].
type RowQuantI8 struct {
	Scale float64
	Zero  int32
}

// QuantizeRowI8 quantizes one activation row onto the signed 8-bit affine
// grid, writing codes into dst and returning the row's scale and zero point.
// The range is taken from the row itself — the same per-call dynamic range
// scaling reram's MatVecInto applies before its DAC. An all-zero row returns
// {Scale: 1, Zero: 0} with zero codes; a constant non-zero row falls back to
// the symmetric code so the single value is represented exactly at ±127.
func QuantizeRowI8(dst []int8, src []float64) RowQuantI8 {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: QuantizeRowI8 length mismatch dst=%d src=%d", len(dst), len(src)))
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range src {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if len(src) == 0 || (lo == 0 && hi == 0) {
		for i := range dst {
			dst[i] = 0
		}
		return RowQuantI8{Scale: 1}
	}
	if lo == hi {
		// constant row: symmetric code, value sits exactly on ±127
		s := math.Abs(lo) / 127
		q := int8(127)
		if lo < 0 {
			q = -127
		}
		for i := range dst {
			dst[i] = q
		}
		return RowQuantI8{Scale: s}
	}
	if lo > 0 {
		lo = 0 // keep zero representable, like a DAC anchored at ground
	}
	if hi < 0 {
		hi = 0
	}
	s := (hi - lo) / 255
	zero := int32(math.Round(-128 - lo/s))
	for i, v := range src {
		q := math.Round(v/s) + float64(zero)
		if q > 127 {
			q = 127
		} else if q < -128 {
			q = -128
		}
		dst[i] = int8(q)
	}
	return RowQuantI8{Scale: s, Zero: zero}
}

// QuantizeWeightsI8 quantizes a row-major (in × out) f64 weight matrix onto
// the symmetric 8-bit grid, one scale per output column, writing the codes
// TRANSPOSED into wqT (out × in) — the layout the dot-form integer kernel
// wants — the per-column scales into sw (length out), and each transposed
// row's code sum into rowSum (length out), which the zero-point correction
// consumes at dequantization time.
func QuantizeWeightsI8(wqT []int8, sw []float64, rowSum []int32, w []float64, in, out int) {
	if len(w) != in*out || len(wqT) != in*out || len(sw) != out || len(rowSum) != out {
		panic(fmt.Sprintf("tensor: QuantizeWeightsI8 length mismatch wqT=%d sw=%d rowSum=%d w=%d for %d×%d",
			len(wqT), len(sw), len(rowSum), len(w), in, out))
	}
	for j := 0; j < out; j++ {
		maxAbs := 0.0
		for k := 0; k < in; k++ {
			if a := math.Abs(w[k*out+j]); a > maxAbs {
				maxAbs = a
			}
		}
		s := maxAbs / 127
		if s == 0 {
			s = 1
		}
		sw[j] = s
		var sum int32
		for k := 0; k < in; k++ {
			q := math.Round(w[k*out+j] / s)
			if q > 127 {
				q = 127
			} else if q < -127 {
				q = -127
			}
			wqT[j*in+k] = int8(q)
			sum += int32(q)
		}
		rowSum[j] = sum
	}
}

// DotI8 returns the int32 dot product of two equal-length int8 vectors,
// 4-wide unrolled across four independent accumulators.
func DotI8(a, b []int8) int32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: DotI8 length mismatch %d vs %d", len(a), len(b)))
	}
	var s0, s1, s2, s3 int32
	p := 0
	for ; p+3 < len(a); p += 4 {
		s0 += int32(a[p]) * int32(b[p])
		s1 += int32(a[p+1]) * int32(b[p+1])
		s2 += int32(a[p+2]) * int32(b[p+2])
		s3 += int32(a[p+3]) * int32(b[p+3])
	}
	for ; p < len(a); p++ {
		s0 += int32(a[p]) * int32(b[p])
	}
	return s0 + s1 + s2 + s3
}

// MatMulTransBI8 computes dst = a·bᵀ over int8 codes with int32 accumulation:
// a is m×k (quantized activation rows), b is n×k (transposed quantized
// weights), dst is m×n. Integer addition is associative, so the unrolled fold
// is exact — no envelope, no ordering caveats.
func MatMulTransBI8(dst []int32, a, b []int8, m, k, n int) {
	if len(a) != m*k || len(b) != n*k || len(dst) != m*n {
		panic(fmt.Sprintf("tensor: MatMulTransBI8 length mismatch dst=%d a=%d b=%d for (%d×%d)·(%d×%d)ᵀ",
			len(dst), len(a), len(b), m, k, n, k))
	}
	if k > MaxI8K {
		panic(fmt.Sprintf("tensor: MatMulTransBI8 inner dimension %d exceeds MaxI8K=%d", k, MaxI8K))
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			drow[j] = DotI8(arow, b[j*k:(j+1)*k])
		}
	}
}

// DequantI8 maps one integer accumulator back to float64:
//
//	y = sx·sw·(acc − zero·rowSum) + bias
//
// where acc = Σ q_x·q_w over the row, zero/sx come from the activation row's
// affine code and sw/rowSum from the weight column. Every term is an exact
// f64 integer, so this ONE expression — shared by the engine's i8 step and
// the quantize-then-f64 oracle — is what makes the I8 gate bitwise instead
// of tolerance-based: both sides compute literally the same float operations
// on literally the same values.
func DequantI8(acc int32, rq RowQuantI8, sw, bias float64, rowSum int32) float64 {
	return rq.Scale*sw*float64(acc-rq.Zero*rowSum) + bias
}
