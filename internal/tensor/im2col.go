package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling window over
// a (C, H, W) input.
type ConvGeom struct {
	InC, InH, InW int // input channels / height / width
	KH, KW        int // kernel height / width
	StrideH       int
	StrideW       int
	PadH          int
	PadW          int
}

// OutH returns the output height of the window sweep.
func (g ConvGeom) OutH() int { return (g.InH+2*g.PadH-g.KH)/g.StrideH + 1 }

// OutW returns the output width of the window sweep.
func (g ConvGeom) OutW() int { return (g.InW+2*g.PadW-g.KW)/g.StrideW + 1 }

// Validate reports an error for degenerate geometry.
func (g ConvGeom) Validate() error {
	switch {
	case g.InC <= 0 || g.InH <= 0 || g.InW <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive input dims %+v", g)
	case g.KH <= 0 || g.KW <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive kernel dims %+v", g)
	case g.StrideH <= 0 || g.StrideW <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive stride %+v", g)
	case g.PadH < 0 || g.PadW < 0:
		return fmt.Errorf("tensor: conv geometry has negative padding %+v", g)
	case g.OutH() <= 0 || g.OutW() <= 0:
		return fmt.Errorf("tensor: conv geometry produces empty output %+v", g)
	}
	return nil
}

// Im2Col expands a (C, H, W) input into a (C*KH*KW, OutH*OutW) matrix so a
// convolution becomes a single matmul with the (OutC, C*KH*KW) kernel matrix.
// dst must have exactly that shape; src must be (C, H, W) flattened.
func Im2Col(dst, src *Tensor, g ConvGeom) {
	Im2ColInto(dst.data, src.data, g)
}

// Im2ColInto is Im2Col over bare row-major slices, for workspace-reusing
// callers that expand samples out of a larger batch buffer without building
// tensor headers. dst must have InC*KH*KW*OutH*OutW elements and src
// InC*InH*InW. It is the single im2col kernel in the package — Im2Col
// delegates here — so batched and per-sample convolutions expand windows in
// exactly the same order.
func Im2ColInto(dst, src []float64, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	cols := outH * outW
	rows := g.InC * g.KH * g.KW
	if len(dst) != rows*cols {
		panic(fmt.Sprintf("tensor: Im2Col dst volume %d != %d", len(dst), rows*cols))
	}
	if len(src) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2Col src volume %d != %d", len(src), g.InC*g.InH*g.InW))
	}
	sd, dd := src, dst
	row := 0
	for c := 0; c < g.InC; c++ {
		chanBase := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				drow := dd[row*cols : (row+1)*cols]
				idx := 0
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.StrideH + kh - g.PadH
					if ih < 0 || ih >= g.InH {
						for ow := 0; ow < outW; ow++ {
							drow[idx] = 0
							idx++
						}
						continue
					}
					rowBase := chanBase + ih*g.InW
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.StrideW + kw - g.PadW
						if iw < 0 || iw >= g.InW {
							drow[idx] = 0
						} else {
							drow[idx] = sd[rowBase+iw]
						}
						idx++
					}
				}
				row++
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatters a (C*KH*KW, OutH*OutW) column
// matrix back into a (C, H, W) image, accumulating where windows overlap.
// dst is zeroed first.
func Col2Im(dst, src *Tensor, g ConvGeom) {
	Col2ImInto(dst.data, src.data, g)
}

// Col2ImInto is Col2Im over bare row-major slices, for workspace-reusing
// callers that scatter per-sample input gradients into rows of a larger batch
// buffer without building tensor headers. It is the single col2im kernel in
// the package — Col2Im delegates here — so batched and per-sample backward
// convolutions accumulate overlapping windows in exactly the same order.
func Col2ImInto(dst, src []float64, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	cols := outH * outW
	rows := g.InC * g.KH * g.KW
	if len(src) != rows*cols {
		panic(fmt.Sprintf("tensor: Col2Im src volume %d != %d", len(src), rows*cols))
	}
	if len(dst) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Col2Im dst volume %d != %d", len(dst), g.InC*g.InH*g.InW))
	}
	for i := range dst {
		dst[i] = 0
	}
	sd, dd := src, dst
	row := 0
	for c := 0; c < g.InC; c++ {
		chanBase := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				srow := sd[row*cols : (row+1)*cols]
				idx := 0
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.StrideH + kh - g.PadH
					if ih < 0 || ih >= g.InH {
						idx += outW
						continue
					}
					rowBase := chanBase + ih*g.InW
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.StrideW + kw - g.PadW
						if iw >= 0 && iw < g.InW {
							dd[rowBase+iw] += srow[idx]
						}
						idx++
					}
				}
				row++
			}
		}
	}
}
