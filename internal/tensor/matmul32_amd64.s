// SSE implementation of the f32 dot-row kernel. Four MULPS/ADDPS lanes are
// exactly the documented DotF32 fold — products at p%4 land in lane p%4,
// quads accumulate in ascending p, the tail runs scalar into lane 0 after
// the quads, and the reduction is ((s0+s1)+(s2+s3)) — so this produces
// bit-identical results to the pure-Go loop in matmul32_noasm.go on every
// input, including NaN/Inf (IEEE per-op semantics are the same). SSE is part
// of the amd64 baseline, so there is no CPUID gate.

#include "textflag.h"

// func denseRowsF32(dst, x, wT []float32, k int)
// For each j in [0, len(dst)): dst[j] = dot4(x, wT[j*k:(j+1)*k]).
// The caller guarantees len(x) == k and len(wT) == len(dst)*k.
TEXT ·denseRowsF32(SB), NOSPLIT, $0-80
	MOVQ dst_base+0(FP), BX
	MOVQ dst_len+8(FP), R8  // n = remaining output count
	MOVQ x_base+24(FP), SI
	MOVQ wT_base+48(FP), DI
	MOVQ k+72(FP), CX

	TESTQ R8, R8
	JZ   done
jloop:
	MOVQ  SI, R9  // x cursor
	MOVQ  DI, R10 // weight-row cursor
	MOVQ  CX, DX
	XORPS X0, X0  // four accumulator lanes
	SHRQ  $2, DX  // quad count
	JZ    tail
qloop:
	MOVUPS (R9), X1
	MOVUPS (R10), X2
	MULPS  X2, X1
	ADDPS  X1, X0
	ADDQ   $16, R9
	ADDQ   $16, R10
	DECQ   DX
	JNZ    qloop
tail:
	MOVQ CX, DX
	ANDQ $3, DX
	JZ   reduce
tloop:
	MOVSS (R9), X1
	MULSS (R10), X1
	ADDSS X1, X0 // tail folds into lane 0, after the quads — same as the Go loop
	ADDQ  $4, R9
	ADDQ  $4, R10
	DECQ  DX
	JNZ   tloop
reduce:
	MOVAPS X0, X1
	SHUFPS $0xB1, X1, X1 // [s1, s0, s3, s2]
	ADDPS  X1, X0        // lane0 = s0+s1, lane2 = s2+s3
	MOVAPS X0, X1
	SHUFPS $0x4E, X1, X1 // lane0 = s2+s3
	ADDSS  X1, X0        // lane0 = (s0+s1)+(s2+s3)
	MOVSS  X0, (BX)
	ADDQ   $4, BX
	LEAQ   (DI)(CX*4), DI // next weight row
	DECQ   R8
	JNZ    jloop
done:
	RET
