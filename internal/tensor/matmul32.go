package tensor

import "fmt"

// This file is the float32 half of the multi-precision kernel tier: f32
// mirrors of the hot destination-passing kernels, written in dot-product form
// with four independent accumulators and 4-wide manually unrolled inner loops
// so the adds pipeline instead of serializing on FP latency. On amd64 the
// dot-form inner loop runs as an SSE kernel (matmul32_amd64.s) whose four
// vector lanes ARE the four accumulators, bit-identical to the portable loop
// (matmul32_noasm.go) — that lane correspondence is where the tier's speedup
// over the scalar f64 reference comes from. None of these kernels promise
// the f64 summation order — the F32 tier is gated on a bounded-ULP envelope
// against the f64 reference, never on bit-identity.
//
// Summation contract: the dot-form kernels fold element products over p
// ascending into four accumulators (p%4 lanes) reduced as ((s0+s1)+(s2+s3));
// the saxpy-form kernels keep the reference (i, p, j) order in float32.
// Fused epilogues (bias, ReLU) operate on the already rounded float32 sum,
// so fusing changes no bits versus running the epilogue as a separate pass —
// which is why the engine may fuse freely within the tier while staying
// inside the same documented envelope.

// DotF32 returns the 4-lane unrolled dot product of two equal-length vectors.
func DotF32(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: DotF32 length mismatch %d vs %d", len(a), len(b)))
	}
	var out [1]float32
	denseRowsF32(out[:], a, b, len(a))
	return out[0]
}

// MatMulSlicesF32 computes dst = a·b over bare float32 slices: a is m×k, b is
// k×n, dst is m×n, all row-major. It is the f32 mirror of MatMulSlices: the
// saxpy (i, p, j) order and zero-skip of the reference survive (ReLU-sparse
// activations make the skip pay even on the fast tier), with the contiguous
// inner loop over b unrolled 4-wide.
func MatMulSlicesF32(dst, a, b []float32, m, k, n int) {
	if len(a) != m*k || len(b) != k*n || len(dst) != m*n {
		panic(fmt.Sprintf("tensor: MatMulSlicesF32 length mismatch dst=%d a=%d b=%d for (%d×%d)·(%d×%d)",
			len(dst), len(a), len(b), m, k, k, n))
	}
	for i := 0; i < m; i++ {
		drow := dst[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
		arow := a[i*k : (i+1)*k]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			j := 0
			for ; j+3 < n; j += 4 {
				drow[j] += av * brow[j]
				drow[j+1] += av * brow[j+1]
				drow[j+2] += av * brow[j+2]
				drow[j+3] += av * brow[j+3]
			}
			for ; j < n; j++ {
				drow[j] += av * brow[j]
			}
		}
	}
}

// MatMulTiledSlicesF32 is the f32 mirror of MatMulTiledSlices: identical
// result to MatMulSlicesF32 (same per-element fold order), with b visited in
// cache-resident row blocks across the sample sweep.
func MatMulTiledSlicesF32(dst, a, b []float32, m, k, n int) {
	blk := 4096 / n // ~16KB of f32 b rows live across the inner sample sweep
	if m <= 1 || blk >= k {
		MatMulSlicesF32(dst, a, b, m, k, n)
		return
	}
	if blk < 16 {
		blk = 16
	}
	if len(a) != m*k || len(b) != k*n || len(dst) != m*n {
		panic(fmt.Sprintf("tensor: MatMulTiledSlicesF32 length mismatch dst=%d a=%d b=%d for (%d×%d)·(%d×%d)",
			len(dst), len(a), len(b), m, k, k, n))
	}
	for j := range dst {
		dst[j] = 0
	}
	for p0 := 0; p0 < k; p0 += blk {
		p1 := p0 + blk
		if p1 > k {
			p1 = k
		}
		for i := 0; i < m; i++ {
			drow := dst[i*n : (i+1)*n]
			arow := a[i*k+p0 : i*k+p1]
			for pi, av := range arow {
				if av == 0 {
					continue
				}
				brow := b[(p0+pi)*n : (p0+pi+1)*n]
				j := 0
				for ; j+3 < n; j += 4 {
					drow[j] += av * brow[j]
					drow[j+1] += av * brow[j+1]
					drow[j+2] += av * brow[j+2]
					drow[j+3] += av * brow[j+3]
				}
				for ; j < n; j++ {
					drow[j] += av * brow[j]
				}
			}
		}
	}
}

// MatMulRowsIntoF32 computes output rows [lo, hi) of dst = a·b over bare f32
// slices (a m×k, b k×n, dst m×n), leaving other rows untouched. Disjoint row
// ranges write disjoint regions, so pool chunks may run concurrently; each
// row's fold order never depends on the partition.
func MatMulRowsIntoF32(dst, a, b []float32, m, k, n, lo, hi int) {
	if len(a) != m*k || len(b) != k*n || len(dst) != m*n {
		panic(fmt.Sprintf("tensor: MatMulRowsIntoF32 length mismatch dst=%d a=%d b=%d for (%d×%d)·(%d×%d)",
			len(dst), len(a), len(b), m, k, k, n))
	}
	if lo < 0 || hi > m || lo > hi {
		panic(fmt.Sprintf("tensor: MatMulRowsIntoF32 row range [%d, %d) out of [0, %d)", lo, hi, m))
	}
	MatMulTiledSlicesF32(dst[lo*n:hi*n], a[lo*k:hi*k], b, hi-lo, k, n)
}

// MatMulTransBSlicesF32 computes dst = a·bᵀ over bare f32 slices: a is m×k,
// b is n×k, dst is m×n. Each output element is a DotF32 of two contiguous
// rows — the layout the engine's converted-weight caches are transposed into,
// because a register dot product beats streaming the dst row through memory.
func MatMulTransBSlicesF32(dst, a, b []float32, m, k, n int) {
	if len(a) != m*k || len(b) != n*k || len(dst) != m*n {
		panic(fmt.Sprintf("tensor: MatMulTransBSlicesF32 length mismatch dst=%d a=%d b=%d for (%d×%d)·(%d×%d)ᵀ",
			len(dst), len(a), len(b), m, k, n, k))
	}
	for i := 0; i < m; i++ {
		denseRowsF32(dst[i*n:(i+1)*n], a[i*k:(i+1)*k], b, k)
	}
}

// MatMulTransASlicesF32 computes dst = aᵀ·b over bare f32 slices: a is k×m,
// b is k×n, dst is m×n. The training tier's dW kernel (x·g over the batch).
func MatMulTransASlicesF32(dst, a, b []float32, k, m, n int) {
	if len(a) != k*m || len(b) != k*n || len(dst) != m*n {
		panic(fmt.Sprintf("tensor: MatMulTransASlicesF32 length mismatch dst=%d a=%d b=%d for (%d×%d)ᵀ·(%d×%d)",
			len(dst), len(a), len(b), k, m, k, n))
	}
	for i := range dst {
		dst[i] = 0
	}
	for p := 0; p < k; p++ {
		arow := a[p*m : (p+1)*m]
		brow := b[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst[i*n : (i+1)*n]
			j := 0
			for ; j+3 < n; j += 4 {
				drow[j] += av * brow[j]
				drow[j+1] += av * brow[j+1]
				drow[j+2] += av * brow[j+2]
				drow[j+3] += av * brow[j+3]
			}
			for ; j < n; j++ {
				drow[j] += av * brow[j]
			}
		}
	}
}

// DenseForwardF32 computes rows [lo, hi) of dst = x·wᵀ + bias with an
// optionally fused ReLU: x is m×k, wT is n×k (the transposed weight cache),
// bias is length n, dst is m×n. This is the one fused kernel the F32 engine
// plan leans on — the dot product stays in registers, the bias lands on the
// rounded sum, and the ReLU clamps the already-final float32 value, so the
// fusion is numerically identical to running the three passes separately.
func DenseForwardF32(dst, x, wT, bias []float32, m, k, n, lo, hi int, relu bool) {
	if len(x) != m*k || len(wT) != n*k || len(bias) != n || len(dst) != m*n {
		panic(fmt.Sprintf("tensor: DenseForwardF32 length mismatch dst=%d x=%d wT=%d bias=%d for (%d×%d)·(%d×%d)ᵀ",
			len(dst), len(x), len(wT), len(bias), m, k, n, k))
	}
	if lo < 0 || hi > m || lo > hi {
		panic(fmt.Sprintf("tensor: DenseForwardF32 row range [%d, %d) out of [0, %d)", lo, hi, m))
	}
	for i := lo; i < hi; i++ {
		xr := x[i*k : (i+1)*k]
		dr := dst[i*n : (i+1)*n]
		denseRowsF32(dr, xr, wT, k)
		for j := 0; j < n; j++ {
			v := dr[j] + bias[j]
			if relu && v < 0 {
				v = 0
			}
			dr[j] = v
		}
	}
}

// MatMulParallelIntoF32 computes dst = a·b (bare f32 slices, a m×k, b k×n)
// with output rows tiled across the pool. Each worker computes a disjoint row
// range through MatMulTiledSlicesF32, so the result matches the serial call
// regardless of worker count. A nil pool runs serially.
func MatMulParallelIntoF32(p *Pool, dst, a, b []float32, m, k, n int) {
	if p == nil || p.workers <= 1 {
		MatMulTiledSlicesF32(dst, a, b, m, k, n)
		return
	}
	if len(a) != m*k || len(b) != k*n || len(dst) != m*n {
		panic(fmt.Sprintf("tensor: MatMulParallelIntoF32 length mismatch dst=%d a=%d b=%d for (%d×%d)·(%d×%d)",
			len(dst), len(a), len(b), m, k, k, n))
	}
	p.Run(m, p.workers, func(_, lo, hi int) {
		MatMulTiledSlicesF32(dst[lo*n:hi*n], a[lo*k:hi*k], b, hi-lo, k, n)
	})
}

// Im2ColIntoF32 is the f32 mirror of Im2ColInto: it expands a (C, H, W)
// source into the (C*KH*KW, OutH*OutW) column matrix over bare f32 slices.
// Window order is identical to the f64 kernel; only the element type changes,
// so the F32 conv path inherits the reference expansion exactly.
func Im2ColIntoF32(dst, src []float32, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	cols := outH * outW
	rows := g.InC * g.KH * g.KW
	if len(dst) != rows*cols {
		panic(fmt.Sprintf("tensor: Im2ColIntoF32 dst volume %d != %d", len(dst), rows*cols))
	}
	if len(src) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2ColIntoF32 src volume %d != %d", len(src), g.InC*g.InH*g.InW))
	}
	row := 0
	for c := 0; c < g.InC; c++ {
		chanBase := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				drow := dst[row*cols : (row+1)*cols]
				idx := 0
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.StrideH + kh - g.PadH
					if ih < 0 || ih >= g.InH {
						for ow := 0; ow < outW; ow++ {
							drow[idx] = 0
							idx++
						}
						continue
					}
					rowBase := chanBase + ih*g.InW
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.StrideW + kw - g.PadW
						if iw < 0 || iw >= g.InW {
							drow[idx] = 0
						} else {
							drow[idx] = src[rowBase+iw]
						}
						idx++
					}
				}
				row++
			}
		}
	}
}

// Transpose2DIntoF32 writes the n×m transpose of the row-major m×n matrix a
// into dst over bare f32 slices.
func Transpose2DIntoF32(dst, a []float32, m, n int) {
	if len(a) != m*n || len(dst) != m*n {
		panic(fmt.Sprintf("tensor: Transpose2DIntoF32 length mismatch dst=%d a=%d for %d×%d", len(dst), len(a), m, n))
	}
	for i := 0; i < m; i++ {
		row := a[i*n : (i+1)*n]
		for j, v := range row {
			dst[j*m+i] = v
		}
	}
}
