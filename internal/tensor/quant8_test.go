package tensor

import (
	"math"
	"testing"

	"reramtest/internal/rng"
)

func TestQuantizeRowI8RoundTrip(t *testing.T) {
	r := rng.New(31)
	src := make([]float64, 64)
	for i := range src {
		src[i] = r.Float64()*4 - 2
	}
	q := make([]int8, len(src))
	rq := QuantizeRowI8(q, src)
	if rq.Scale <= 0 {
		t.Fatalf("scale = %g, want > 0", rq.Scale)
	}
	// dequantized codes must reproduce each value within half a step
	for i, v := range src {
		back := rq.Scale * float64(int32(q[i])-rq.Zero)
		if math.Abs(back-v) > rq.Scale/2+1e-12 {
			t.Fatalf("elem %d: dequant %g vs %g exceeds half-step %g", i, back, v, rq.Scale/2)
		}
	}
}

func TestQuantizeRowI8EdgeCases(t *testing.T) {
	q := make([]int8, 4)

	// all-zero row: identity quantization, zero codes
	rq := QuantizeRowI8(q, []float64{0, 0, 0, 0})
	if rq.Scale != 1 || rq.Zero != 0 {
		t.Fatalf("zero row params = %+v, want {1 0}", rq)
	}
	for i, c := range q {
		if c != 0 {
			t.Fatalf("zero row code %d = %d", i, c)
		}
	}

	// constant row: symmetric mapping, exact round trip
	rq = QuantizeRowI8(q, []float64{2.5, 2.5, 2.5, 2.5})
	for _, c := range q {
		if back := rq.Scale * float64(int32(c)-rq.Zero); math.Abs(back-2.5) > 1e-9 {
			t.Fatalf("constant row dequant %g, want 2.5", back)
		}
	}

	// range not containing zero gets extended so zero is representable —
	// ReLU'd activations quantize a true zero exactly: the code equal to the
	// zero point must be a legal int8 value
	src := []float64{3, 4, 5, 6}
	rq = QuantizeRowI8(q, src)
	if rq.Zero < -128 || rq.Zero > 127 {
		t.Fatalf("zero point %d outside int8", rq.Zero)
	}
	for i, v := range src {
		back := rq.Scale * float64(int32(q[i])-rq.Zero)
		if math.Abs(back-v) > rq.Scale/2+1e-12 {
			t.Fatalf("elem %d: dequant %g vs %g", i, back, v)
		}
	}
}

func TestQuantizeWeightsI8Layout(t *testing.T) {
	// w is (in=2, out=3) row-major; codes are stored transposed (out, in)
	w := []float64{1, -2, 0.5, 0.25, 4, -0.5}
	in, out := 2, 3
	wqT := make([]int8, in*out)
	sw := make([]float64, out)
	rowSum := make([]int32, out)
	QuantizeWeightsI8(wqT, sw, rowSum, w, in, out)
	for j := 0; j < out; j++ {
		var sum int32
		maxAbs := 0.0
		for k := 0; k < in; k++ {
			code := wqT[j*in+k]
			sum += int32(code)
			back := sw[j] * float64(code)
			want := w[k*out+j]
			if math.Abs(back-want) > sw[j]/2+1e-12 {
				t.Fatalf("col %d row %d: dequant %g vs %g", j, k, back, want)
			}
			if a := math.Abs(want); a > maxAbs {
				maxAbs = a
			}
			if code < -127 || code > 127 {
				t.Fatalf("col %d row %d: code %d outside symmetric range", j, k, code)
			}
		}
		if sum != rowSum[j] {
			t.Fatalf("col %d: rowSum %d, codes sum to %d", j, rowSum[j], sum)
		}
		if maxAbs > 0 && math.Abs(sw[j]*127-maxAbs) > 1e-12 {
			t.Fatalf("col %d: scale %g does not map 127 to maxAbs %g", j, sw[j], maxAbs)
		}
	}
	// all-zero column keeps a benign unit scale
	wz := []float64{0, 1, 0, 2}
	QuantizeWeightsI8(wqT[:4], sw[:2], rowSum[:2], wz, 2, 2)
	if sw[0] != 1 || rowSum[0] != 0 {
		t.Fatalf("zero column scale=%g rowSum=%d, want 1 and 0", sw[0], rowSum[0])
	}
}

func TestDotI8MatchesWideSum(t *testing.T) {
	r := rng.New(33)
	for _, k := range []int{1, 3, 4, 7, 64, 1000} {
		a, b := make([]int8, k), make([]int8, k)
		for i := 0; i < k; i++ {
			a[i] = int8(r.Intn(256) - 128)
			b[i] = int8(r.Intn(256) - 128)
		}
		var want int64
		for i := 0; i < k; i++ {
			want += int64(a[i]) * int64(b[i])
		}
		if got := DotI8(a, b); int64(got) != want {
			t.Fatalf("k=%d: DotI8 = %d, want %d", k, got, want)
		}
	}
}

func TestMatMulTransBI8(t *testing.T) {
	r := rng.New(35)
	m, k, n := 5, 17, 4
	a, b := make([]int8, m*k), make([]int8, n*k)
	for i := range a {
		a[i] = int8(r.Intn(256) - 128)
	}
	for i := range b {
		b[i] = int8(r.Intn(256) - 128)
	}
	dst := make([]int32, m*n)
	MatMulTransBI8(dst, a, b, m, k, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var want int64
			for p := 0; p < k; p++ {
				want += int64(a[i*k+p]) * int64(b[j*k+p])
			}
			if int64(dst[i*n+j]) != want {
				t.Fatalf("elem (%d,%d) = %d, want %d", i, j, dst[i*n+j], want)
			}
		}
	}
}

func TestMatMulTransBI8RejectsHugeK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k > MaxI8K did not panic")
		}
	}()
	k := MaxI8K + 1
	MatMulTransBI8(make([]int32, 1), make([]int8, k), make([]int8, k), 1, k, 1)
}

func TestDequantI8SharedExpression(t *testing.T) {
	// the engine step and the oracle both call this exact expression; pin the
	// algebra: scale·sw·(acc − zero·rowSum) + bias
	rq := RowQuantI8{Scale: 0.125, Zero: -3}
	got := DequantI8(100, rq, 0.5, 1.5, 7)
	want := 0.125*0.5*float64(100-(-3)*7) + 1.5
	if got != want {
		t.Fatalf("DequantI8 = %g, want %g", got, want)
	}
}
