//go:build !amd64

package tensor

// denseRowsF32 computes dst[j] = dot4(x, wT[j*k:(j+1)*k]) for every j, where
// dot4 is the documented 4-lane p%4 fold reduced as ((s0+s1)+(s2+s3)): the
// portable mirror of the SSE kernel in matmul32_amd64.s, bit-identical on
// every input. Callers guarantee len(x) == k and len(wT) == len(dst)*k.
func denseRowsF32(dst, x, wT []float32, k int) {
	for j := range dst {
		wr := wT[j*k : (j+1)*k]
		wr = wr[:len(x)]
		var s0, s1, s2, s3 float32
		p := 0
		for ; p+3 < len(x); p += 4 {
			s0 += x[p] * wr[p]
			s1 += x[p+1] * wr[p+1]
			s2 += x[p+2] * wr[p+2]
			s3 += x[p+3] * wr[p+3]
		}
		for ; p < len(x); p++ {
			s0 += x[p] * wr[p]
		}
		dst[j] = (s0 + s1) + (s2 + s3)
	}
}
