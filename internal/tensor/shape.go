package tensor

import (
	"fmt"
	"strings"
)

// Wildcard matches any size in an AssertDims dimension list.
const Wildcard = -1

// SameShape reports whether a and b have identical shapes (same rank and the
// same size on every axis).
func SameShape(a, b *Tensor) bool { return sameShape(a.shape, b.shape) }

// AssertDims panics unless t has exactly the given dimensions. A Wildcard (-1)
// entry matches any size on that axis, so kernels can pin the axes they care
// about while leaving batch sizes free:
//
//	tensor.AssertDims("MatMulInto dst", dst, m, n)
//	tensor.AssertDims("ForwardBatch x", x, tensor.Wildcard, inDim)
//
// The panic message names the operation, the expected shape and the shape
// actually seen, so shape bugs surface at the kernel boundary instead of as
// an index-out-of-range deep inside a loop.
func AssertDims(op string, t *Tensor, dims ...int) {
	if t == nil {
		panic(fmt.Sprintf("tensor: %s got a nil tensor, want shape %s", op, dimString(dims)))
	}
	if len(t.shape) != len(dims) {
		panic(fmt.Sprintf("tensor: %s wants shape %s, got %v", op, dimString(dims), t.shape))
	}
	for i, d := range dims {
		if d != Wildcard && t.shape[i] != d {
			panic(fmt.Sprintf("tensor: %s wants shape %s, got %v", op, dimString(dims), t.shape))
		}
	}
}

// dimString renders an expected-dimension list with wildcards as "*".
func dimString(dims []int) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		if d == Wildcard {
			parts[i] = "*"
		} else {
			parts[i] = fmt.Sprint(d)
		}
	}
	return "[" + strings.Join(parts, " ") + "]"
}
