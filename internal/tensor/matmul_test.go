package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"reramtest/internal/rng"
)

// naiveMatMul is the reference implementation the optimised kernels are
// checked against.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func TestMatMulKnownValues(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	got := MatMul(a, b)
	want := FromSlice([]float64{19, 22, 43, 50}, 2, 2)
	if !got.Equal(want) {
		t.Fatalf("MatMul got %v", got.Data())
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	r := rng.New(1)
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {7, 2, 9}, {16, 16, 16}, {5, 31, 2}} {
		a := Randn(r, 0, 1, dims[0], dims[1])
		b := Randn(r, 0, 1, dims[1], dims[2])
		if got, want := MatMul(a, b), naiveMatMul(a, b); !got.AllClose(want, 1e-10) {
			t.Fatalf("MatMul mismatch at dims %v", dims)
		}
	}
}

func TestMatMulInnerMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inner-dim mismatch did not panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestMatMulTransB(t *testing.T) {
	r := rng.New(2)
	a := Randn(r, 0, 1, 4, 6)
	b := Randn(r, 0, 1, 5, 6) // b is (n, k): a·bᵀ is (4, 5)
	got := New(4, 5)
	MatMulTransBInto(got, a, b)
	want := naiveMatMul(a, Transpose2D(b))
	if !got.AllClose(want, 1e-10) {
		t.Fatal("MatMulTransBInto mismatch")
	}
}

func TestMatMulTransA(t *testing.T) {
	r := rng.New(3)
	a := Randn(r, 0, 1, 6, 4) // a is (k, m): aᵀ·b is (4, 5)
	b := Randn(r, 0, 1, 6, 5)
	got := New(4, 5)
	MatMulTransAInto(got, a, b)
	want := naiveMatMul(Transpose2D(a), b)
	if !got.AllClose(want, 1e-10) {
		t.Fatal("MatMulTransAInto mismatch")
	}
}

func TestMatVecMatchesMatMul(t *testing.T) {
	r := rng.New(4)
	a := Randn(r, 0, 1, 7, 9)
	x := Randn(r, 0, 1, 9).Data()
	got := MatVec(a, x)
	want := MatMul(a, FromSlice(append([]float64(nil), x...), 9, 1))
	for i, v := range got {
		if math.Abs(v-want.At(i, 0)) > 1e-10 {
			t.Fatalf("MatVec[%d]=%v want %v", i, v, want.At(i, 0))
		}
	}
}

func TestTranspose2DInvolution(t *testing.T) {
	r := rng.New(5)
	a := Randn(r, 0, 1, 3, 8)
	if !Transpose2D(Transpose2D(a)).Equal(a) {
		t.Fatal("double transpose is not identity")
	}
}

func TestMatMulIntoReuse(t *testing.T) {
	r := rng.New(6)
	a := Randn(r, 0, 1, 3, 3)
	b := Randn(r, 0, 1, 3, 3)
	dst := Full(123, 3, 3) // pre-filled garbage must be overwritten
	MatMulInto(dst, a, b)
	if !dst.AllClose(naiveMatMul(a, b), 1e-10) {
		t.Fatal("MatMulInto did not overwrite destination")
	}
}

// Property: (A·B)·x == A·(B·x) — associativity of the kernels via MatVec.
func TestMatMulAssociativityProperty(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		a := Randn(r, 0, 1, 4, 5)
		b := Randn(r, 0, 1, 5, 6)
		x := Randn(r, 0, 1, 6).Data()
		left := MatVec(MatMul(a, b), x)
		right := MatVec(a, MatVec(b, x))
		for i := range left {
			if math.Abs(left[i]-right[i]) > 1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

// Property: matmul distributes over addition: A·(B+C) == A·B + A·C.
func TestMatMulDistributivityProperty(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		a := Randn(r, 0, 1, 3, 4)
		b := Randn(r, 0, 1, 4, 5)
		c := Randn(r, 0, 1, 4, 5)
		left := MatMul(a, b.Add(c))
		right := MatMul(a, b).Add(MatMul(a, c))
		return left.AllClose(right, 1e-9)
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	r := rng.New(1)
	x := Randn(r, 0, 1, 64, 64)
	y := Randn(r, 0, 1, 64, 64)
	dst := New(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

func BenchmarkMatVec128(b *testing.B) {
	r := rng.New(1)
	a := Randn(r, 0, 1, 128, 128)
	x := Randn(r, 0, 1, 128).Data()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVec(a, x)
	}
}
