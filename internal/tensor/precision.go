package tensor

import (
	"fmt"
	"math"
)

// Precision selects the numeric tier a compiled plan computes in. The zero
// value is F64, the scalar float64 reference arm — every existing caller that
// never mentions a precision keeps exactly the bits it had. The fast tiers are
// opt-in: F32 runs the 4-wide unrolled float32 kernels (bounded-ULP versus the
// reference), I8 runs the int8×int8→int32 quantized kernels that mirror the
// DAC/ADC resolution `internal/reram` models (exact versus a model-level
// quantize-then-f64 oracle).
type Precision uint8

const (
	// F64 is the scalar float64 reference tier: bit-identical to the legacy
	// per-sample path, and the arm every fast tier is gated against.
	F64 Precision = iota
	// F32 is the float32 fast tier: dot-product-form kernels with four
	// independent accumulators and fused bias/activation, accepted only
	// within a documented ULP envelope of the F64 reference.
	F32
	// I8 is the quantized tier: per-row affine int8 activations against
	// per-column int8 weights accumulated in int32, dequantized in float64.
	// It mirrors the 8-bit DAC/ADC converters of the reram model and must be
	// exactly equal to quantizing in the model domain and computing in f64.
	I8
)

// String returns the canonical lower-case tier name used in flags, /statsz
// and benchmark artifacts.
func (p Precision) String() string {
	switch p {
	case F64:
		return "f64"
	case F32:
		return "f32"
	case I8:
		return "i8"
	default:
		return fmt.Sprintf("precision(%d)", uint8(p))
	}
}

// ParsePrecision maps a tier name ("f64", "f32", "i8") back to its Precision.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "f64", "":
		return F64, nil
	case "f32":
		return F32, nil
	case "i8":
		return I8, nil
	default:
		return F64, fmt.Errorf("tensor: unknown precision %q (want f64, f32 or i8)", s)
	}
}

// ConvertF64ToF32 narrows src into dst element-wise. Lengths must match.
func ConvertF64ToF32(dst []float32, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: ConvertF64ToF32 length mismatch dst=%d src=%d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] = float32(v)
	}
}

// ConvertF32ToF64 widens src into dst element-wise. Lengths must match.
func ConvertF32ToF64(dst []float64, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: ConvertF32ToF64 length mismatch dst=%d src=%d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] = float64(v)
	}
}

// ULPDistF32 returns the distance in float32 representation steps between two
// finite float32 values (0 when bitwise equal, 1 for adjacent floats, …).
// Values of opposite sign are measured through zero. NaN anywhere returns
// MaxInt64-ish large; callers gate on a bound so "huge" is all that matters.
func ULPDistF32(a, b float32) int64 {
	if a == b {
		return 0 // covers +0 == -0
	}
	if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
		return math.MaxInt64
	}
	ia := orderedBitsF32(a)
	ib := orderedBitsF32(b)
	d := ia - ib
	if d < 0 {
		d = -d
	}
	return d
}

// orderedBitsF32 maps float32 bit patterns onto a monotone integer line so
// subtracting two images counts the representable floats between them:
// negative floats map to the negated magnitude bits, positive floats to the
// raw bits, which makes the line strictly increasing in float order.
func orderedBitsF32(f float32) int64 {
	b := int64(math.Float32bits(f))
	if b&0x80000000 != 0 {
		return -(b & 0x7fffffff)
	}
	return b
}

// MaxULPDistF32 returns the largest ULP distance between got[i] and the
// nearest float32 to want[i]. It is the measurement half of the F32 gate
// contract: the fast tier must stay within a documented ULP envelope of the
// f64 reference after that reference is itself rounded to float32 (the
// rounding is not the kernel's error to answer for).
func MaxULPDistF32(got []float32, want []float64) int64 {
	if len(got) != len(want) {
		panic(fmt.Sprintf("tensor: MaxULPDistF32 length mismatch got=%d want=%d", len(got), len(want)))
	}
	var max int64
	for i, g := range got {
		if d := ULPDistF32(g, float32(want[i])); d > max {
			max = d
		}
	}
	return max
}
