package tensor

// denseRowsF32 computes dst[j] = dot4(x, wT[j*k:(j+1)*k]) for every j, where
// dot4 is the documented 4-lane p%4 fold reduced as ((s0+s1)+(s2+s3)). The
// SSE implementation in matmul32_amd64.s is bit-identical to the pure-Go
// loop (four vector lanes ARE the four accumulators); it exists because the
// scalar loop is issue-width bound at ~1 madd/cycle while MULPS/ADDPS retire
// four lanes per pair. Callers guarantee len(x) == k and len(wT) == len(dst)*k.
//
//go:noescape
func denseRowsF32(dst, x, wT []float32, k int)
