package tensor

import (
	"strings"
	"testing"
)

func TestSameShape(t *testing.T) {
	if !SameShape(New(2, 3), New(2, 3)) {
		t.Fatal("equal shapes reported different")
	}
	if SameShape(New(2, 3), New(3, 2)) {
		t.Fatal("different dims reported same")
	}
	if SameShape(New(6), New(2, 3)) {
		t.Fatal("different ranks reported same")
	}
}

func TestAssertDimsAccepts(t *testing.T) {
	AssertDims("test", New(4, 7), 4, 7)
	AssertDims("test", New(4, 7), Wildcard, 7)
	AssertDims("test", New(4, 7), Wildcard, Wildcard)
	AssertDims("scalar", New()) // rank-0 matches an empty dim list
}

// assertPanicContains runs f and requires a panic whose message contains every
// fragment — the helpers exist precisely so shape bugs carry usable messages.
func assertPanicContains(t *testing.T, fragments []string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic, got none")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T) is not a string", r, r)
		}
		for _, frag := range fragments {
			if !strings.Contains(msg, frag) {
				t.Fatalf("panic message %q missing %q", msg, frag)
			}
		}
	}()
	f()
}

func TestAssertDimsWrongSize(t *testing.T) {
	assertPanicContains(t, []string{"MatMulInto dst", "[4 7]", "[4 8]"}, func() {
		AssertDims("MatMulInto dst", New(4, 8), 4, 7)
	})
}

func TestAssertDimsWrongRank(t *testing.T) {
	assertPanicContains(t, []string{"ForwardBatch x", "[* 16]", "[16]"}, func() {
		AssertDims("ForwardBatch x", New(16), Wildcard, 16)
	})
}

func TestAssertDimsNilTensor(t *testing.T) {
	assertPanicContains(t, []string{"observe", "nil tensor", "[3 5]"}, func() {
		AssertDims("observe", nil, 3, 5)
	})
}

func TestAssertDimsWildcardMessage(t *testing.T) {
	// the wildcard renders as * so the message reads as a pattern
	assertPanicContains(t, []string{"[* 7]"}, func() {
		AssertDims("op", New(3, 6), Wildcard, 7)
	})
}
