package tensor

import (
	"sync"
	"testing"

	"reramtest/internal/rng"
)

// TestPoolRunCoversRange checks every index is visited exactly once for a
// spread of (n, chunks, workers) combinations, including inline pools.
func TestPoolRunCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		p := NewPool(workers)
		for _, n := range []int{1, 2, 3, 7, 16, 64, 65} {
			for _, chunks := range []int{1, 2, 3, 8} {
				var mu sync.Mutex
				seen := make([]int, n)
				p.Run(n, chunks, func(_, lo, hi int) {
					mu.Lock()
					for i := lo; i < hi; i++ {
						seen[i]++
					}
					mu.Unlock()
				})
				for i, c := range seen {
					if c != 1 {
						t.Fatalf("workers=%d n=%d chunks=%d: index %d visited %d times", workers, n, chunks, i, c)
					}
				}
			}
		}
		p.Close()
	}
}

// TestPoolRunZero checks the degenerate empty range is a no-op.
func TestPoolRunZero(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	called := false
	p.Run(0, 4, func(_, _, _ int) { called = true })
	if called {
		t.Fatal("body invoked for empty range")
	}
}

// TestMatMulParallelBitIdentical: the worker pool must not change a single
// bit of the product relative to the serial kernel, for any worker count —
// rows are disjoint and each row keeps its summation order.
func TestMatMulParallelBitIdentical(t *testing.T) {
	r := rng.New(3)
	a := Randn(r, 0, 1, 37, 19)
	b := Randn(r, 0, 1, 19, 23)
	// sparsify a little so the av==0 skip path is exercised too
	ad := a.Data()
	for i := 0; i < len(ad); i += 5 {
		ad[i] = 0
	}
	want := MatMul(a, b)
	for _, workers := range []int{1, 2, 3, 8} {
		p := NewPool(workers)
		got := New(37, 23)
		MatMulParallelInto(p, got, a, b)
		if !got.Equal(want) {
			t.Fatalf("workers=%d: parallel product differs from serial", workers)
		}
		p.Close()
	}
	// nil pool must work too
	got := New(37, 23)
	MatMulParallelInto(nil, got, a, b)
	if !got.Equal(want) {
		t.Fatal("nil-pool product differs from serial")
	}
}

// TestMatMulRowsIntoMatchesFull: computing disjoint row ranges must
// reassemble into exactly the full product, and rows outside the range must
// be untouched.
func TestMatMulRowsIntoMatchesFull(t *testing.T) {
	r := rng.New(4)
	a := Randn(r, 0, 1, 10, 6)
	b := Randn(r, 0, 1, 6, 8)
	want := MatMul(a, b)
	got := Full(-99, 10, 8)
	MatMulRowsInto(got, a, b, 3, 7)
	gd, wd := got.Data(), want.Data()
	for i := 0; i < 10*8; i++ {
		row := i / 8
		if row >= 3 && row < 7 {
			if gd[i] != wd[i] {
				t.Fatalf("in-range element %d differs", i)
			}
		} else if gd[i] != -99 {
			t.Fatalf("out-of-range element %d was written", i)
		}
	}
	MatMulRowsInto(got, a, b, 0, 3)
	MatMulRowsInto(got, a, b, 7, 10)
	if !got.Equal(want) {
		t.Fatal("range-assembled product differs from full product")
	}
}

func TestMatMulRowsIntoBadRangePanics(t *testing.T) {
	a, b, d := New(4, 2), New(2, 3), New(4, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range rows did not panic")
		}
	}()
	MatMulRowsInto(d, a, b, 2, 5)
}

// TestPoolSharedAcrossGoroutines drives one pool from several goroutines at
// once (the fleet's topology: engines on different devices sharing the
// process pool). Run under -race by `make check`.
func TestPoolSharedAcrossGoroutines(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	r := rng.New(5)
	a := Randn(r, 0, 1, 31, 17)
	b := Randn(r, 0, 1, 17, 13)
	want := MatMul(a, b)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := New(31, 13)
			for iter := 0; iter < 50; iter++ {
				MatMulParallelInto(p, got, a, b)
				if !got.Equal(want) {
					errs <- "concurrent parallel product diverged"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestTranspose2DInto(t *testing.T) {
	r := rng.New(6)
	a := Randn(r, 0, 1, 5, 9)
	want := Transpose2D(a)
	got := New(9, 5)
	Transpose2DInto(got, a)
	if !got.Equal(want) {
		t.Fatal("Transpose2DInto differs from Transpose2D")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-shape dst did not panic")
		}
	}()
	Transpose2DInto(New(5, 9), a)
}
