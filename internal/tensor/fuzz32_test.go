package tensor

import (
	"math"
	"testing"

	"reramtest/internal/rng"
)

// FuzzMatMulF32VsF64 drives the f32 matmul kernels with fuzzer-chosen shapes
// and seeds and gates every output element against the f64 reference through
// the standard forward-error bound c·(k+2)·eps32·Σ|aᵢbᵢ| — the same contract
// the engine-level ULP gate is derived from. It also pins the intra-tier
// bit-identity promises: tiled, row-ranged and plain kernels must agree
// exactly (identical fold order), and the fused dense epilogue must not
// change bits versus separate passes.
//
// Seeds cover degenerate shapes (1×1×1), unroll remainders (k, n ≢ 0 mod 4),
// the tiled-kernel crossover, and a scale spread that exercises rounding.
func FuzzMatMulF32VsF64(f *testing.F) {
	f.Add(int64(1), uint8(1), uint8(1), uint8(1), false)
	f.Add(int64(2), uint8(3), uint8(4), uint8(5), false)
	f.Add(int64(3), uint8(7), uint8(2), uint8(9), true)
	f.Add(int64(4), uint8(16), uint8(16), uint8(16), false)
	f.Add(int64(5), uint8(5), uint8(31), uint8(2), true)
	f.Add(int64(6), uint8(2), uint8(255), uint8(3), false)
	f.Add(int64(7), uint8(9), uint8(13), uint8(21), true)
	f.Fuzz(func(t *testing.T, seed int64, mb, kb, nb uint8, spread bool) {
		m := int(mb)%24 + 1
		k := int(kb) + 1
		n := int(nb)%24 + 1
		r := rng.New(seed)
		a, b := make([]float32, m*k), make([]float32, k*n)
		fill := func(dst []float32) {
			for i := range dst {
				v := r.Float64()*2 - 1
				if spread {
					// push exponents apart so rounding differences surface
					v *= math.Pow(2, float64(r.Intn(17)-8))
				}
				// sprinkle exact zeros: the saxpy kernels skip them
				if r.Intn(8) == 0 {
					v = 0
				}
				dst[i] = float32(v)
			}
		}
		fill(a)
		fill(b)

		got := make([]float32, m*n)
		MatMulSlicesF32(got, a, b, m, k, n)

		// f64 oracle over widened operands
		want := make([]float64, m*n)
		MatMulSlices(want, widenF32(a), widenF32(b), m, k, n)

		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var mag float64
				for p := 0; p < k; p++ {
					mag += math.Abs(float64(a[i*k+p]) * float64(b[p*n+j]))
				}
				bound := 4 * float64(k+2) * 0x1p-24 * mag
				if e := math.Abs(float64(got[i*n+j]) - want[i*n+j]); e > bound {
					t.Fatalf("(%d,%d,%d) elem (%d,%d): |f32−f64| = %g exceeds bound %g", m, k, n, i, j, e, bound)
				}
			}
		}

		// intra-tier bit-identity: tiled and row-ranged kernels
		tiled := make([]float32, m*n)
		MatMulTiledSlicesF32(tiled, a, b, m, k, n)
		ranged := make([]float32, m*n)
		MatMulRowsIntoF32(ranged, a, b, m, k, n, 0, m)
		for i := range got {
			if tiled[i] != got[i] {
				t.Fatalf("tiled kernel diverges from plain at elem %d", i)
			}
			if ranged[i] != got[i] {
				t.Fatalf("row-ranged kernel diverges from plain at elem %d", i)
			}
		}

		// fused dense epilogue: bias+relu on the rounded sum changes no bits
		if m*k > 0 && n > 0 {
			bT := make([]float32, k*n)
			Transpose2DIntoF32(bT, b, k, n)
			bias := make([]float32, n)
			for j := range bias {
				bias[j] = float32(r.Float64() - 0.5)
			}
			fused := make([]float32, m*n)
			DenseForwardF32(fused, a, bT, bias, m, k, n, 0, m, true)
			sep := make([]float32, m*n)
			MatMulTransBSlicesF32(sep, a, bT, m, k, n)
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					v := sep[i*n+j] + bias[j]
					if v < 0 {
						v = 0
					}
					if fused[i*n+j] != v {
						t.Fatalf("fused epilogue changed bits at (%d,%d)", i, j)
					}
				}
			}
		}
	})
}
