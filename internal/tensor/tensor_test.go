package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"reramtest/internal/rng"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len=%d, want 24", x.Len())
	}
	if x.Rank() != 3 {
		t.Fatalf("Rank=%d, want 3", x.Rank())
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New tensor not zero-filled")
		}
	}
}

func TestScalarTensor(t *testing.T) {
	x := New()
	if x.Len() != 1 {
		t.Fatalf("scalar tensor Len=%d, want 1", x.Len())
	}
	x.Set(5)
	if x.At() != 5 {
		t.Fatalf("scalar At=%v, want 5", x.At())
	}
}

func TestAtSetRowMajor(t *testing.T) {
	x := New(2, 3)
	x.Set(7, 1, 2)
	if x.Data()[5] != 7 {
		t.Fatal("Set(1,2) did not write row-major offset 5")
	}
	if x.At(1, 2) != 7 {
		t.Fatal("At(1,2) did not read back the value")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceSharesData(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[0] = 9
	if x.At(0, 0) != 9 {
		t.Fatal("FromSlice copied instead of wrapping")
	}
}

func TestFromSliceVolumeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice volume mismatch did not panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3}, 3)
	y := x.Clone()
	y.Data()[0] = 99
	if x.Data()[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestReshapeView(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Fatal("Reshape did not alias storage")
	}
	if y.Dim(0) != 3 || y.Dim(1) != 2 {
		t.Fatal("Reshape wrong shape")
	}
}

func TestReshapeBadVolumePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad reshape did not panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestArithmetic(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{10, 20, 30}, 3)
	if got := a.Add(b).Data(); got[2] != 33 {
		t.Fatalf("Add wrong: %v", got)
	}
	if got := b.Sub(a).Data(); got[0] != 9 {
		t.Fatalf("Sub wrong: %v", got)
	}
	if got := a.Mul(b).Data(); got[1] != 40 {
		t.Fatalf("Mul wrong: %v", got)
	}
	if got := a.Scale(2).Data(); got[2] != 6 {
		t.Fatalf("Scale wrong: %v", got)
	}
	// originals untouched
	if a.Data()[0] != 1 || b.Data()[0] != 10 {
		t.Fatal("non-inplace ops mutated operands")
	}
}

func TestAxpy(t *testing.T) {
	a := FromSlice([]float64{1, 1}, 2)
	b := FromSlice([]float64{2, 3}, 2)
	a.AxpyInPlace(0.5, b)
	if a.Data()[0] != 2 || a.Data()[1] != 2.5 {
		t.Fatalf("Axpy wrong: %v", a.Data())
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 4)
	if x.Sum() != 10 {
		t.Fatalf("Sum=%v", x.Sum())
	}
	if x.Mean() != 2.5 {
		t.Fatalf("Mean=%v", x.Mean())
	}
	if x.Min() != 1 || x.Max() != 4 {
		t.Fatalf("Min/Max=%v/%v", x.Min(), x.Max())
	}
	wantStd := math.Sqrt(1.25)
	if math.Abs(x.Std()-wantStd) > 1e-12 {
		t.Fatalf("Std=%v want %v", x.Std(), wantStd)
	}
}

func TestArgMaxFirstOnTies(t *testing.T) {
	x := FromSlice([]float64{1, 5, 5, 2}, 4)
	if x.ArgMax() != 1 {
		t.Fatalf("ArgMax=%d, want 1", x.ArgMax())
	}
}

func TestClamp(t *testing.T) {
	x := FromSlice([]float64{-2, 0.5, 3}, 3)
	x.ClampInPlace(0, 1)
	want := []float64{0, 0.5, 1}
	for i, v := range x.Data() {
		if v != want[i] {
			t.Fatalf("Clamp got %v", x.Data())
		}
	}
}

func TestL1DistAndL2Norm(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{3, 0}, 2)
	if got := a.L1Dist(b); got != 2 {
		t.Fatalf("L1Dist=%v, want 2 (mean of |Δ|=2,2)", got)
	}
	if got := FromSlice([]float64{3, 4}, 2).L2Norm(); got != 5 {
		t.Fatalf("L2Norm=%v, want 5", got)
	}
}

func TestEqualAndAllClose(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{1, 2.0000001}, 2)
	if a.Equal(b) {
		t.Fatal("Equal ignored tiny difference")
	}
	if !a.AllClose(b, 1e-5) {
		t.Fatal("AllClose rejected within-tolerance difference")
	}
	if a.Equal(FromSlice([]float64{1, 2}, 1, 2)) {
		t.Fatal("Equal ignored shape difference")
	}
}

func TestApplyAndMap(t *testing.T) {
	a := FromSlice([]float64{1, 4, 9}, 3)
	m := a.Map(math.Sqrt)
	if m.Data()[2] != 3 {
		t.Fatalf("Map wrong: %v", m.Data())
	}
	if a.Data()[2] != 9 {
		t.Fatal("Map mutated original")
	}
	a.Apply(func(v float64) float64 { return -v })
	if a.Data()[0] != -1 {
		t.Fatal("Apply did not mutate in place")
	}
}

func TestRandnShapeAndSpread(t *testing.T) {
	r := rng.New(5)
	x := Randn(r, 0, 1, 100, 10)
	if x.Dim(0) != 100 || x.Dim(1) != 10 {
		t.Fatalf("Randn shape %v", x.Shape())
	}
	if s := x.Std(); s < 0.9 || s > 1.1 {
		t.Fatalf("Randn std %v, want ≈1", s)
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(2, 2)
	b := FromSlice([]float64{1, 2, 3, 4}, 4)
	a.CopyFrom(b)
	if a.At(1, 1) != 4 {
		t.Fatal("CopyFrom did not copy data")
	}
}

// Property: Sum is linear — Sum(a·s) = s·Sum(a).
func TestSumLinearityProperty(t *testing.T) {
	err := quick.Check(func(seed int64, sRaw int8) bool {
		s := float64(sRaw) / 16
		x := RandUniform(rng.New(seed), -1, 1, 17)
		want := x.Sum() * s
		got := x.Scale(s).Sum()
		return math.Abs(want-got) < 1e-9
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

// Property: Clamp is idempotent and bounded.
func TestClampProperty(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		x := RandUniform(rng.New(seed), -3, 3, 64)
		x.ClampInPlace(-1, 1)
		once := x.Clone()
		x.ClampInPlace(-1, 1)
		if !x.Equal(once) {
			return false
		}
		return x.Min() >= -1 && x.Max() <= 1
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

// Property: Std is translation-invariant.
func TestStdTranslationInvariance(t *testing.T) {
	err := quick.Check(func(seed int64, shiftRaw int8) bool {
		shift := float64(shiftRaw)
		x := RandUniform(rng.New(seed), 0, 1, 33)
		y := x.Map(func(v float64) float64 { return v + shift })
		return math.Abs(x.Std()-y.Std()) < 1e-9
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
