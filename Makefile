# Tier-1 gate: everything `make check` runs must stay green.
#
#   make check   vet + build + full test suite + race detector on the
#                hardened-runtime packages + a short campaign soak smoke
#   make race    race detector over the whole tree (slow: retrains models
#                under the race runtime)
#   make soak    the full 20-campaign acceptance soak with scorecard

GO ?= go

# The packages with concurrency-sensitive or newly hardened logic; raced on
# every check. `make race` covers the rest.
RACE_PKGS = ./internal/health/... ./internal/campaign/... ./internal/monitor/... \
            ./internal/detect/... ./internal/stats/... ./internal/repair/...

.PHONY: check vet build test race-fast race soak-smoke soak

check: vet build test race-fast soak-smoke
	@echo "check: PASS"

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race-fast:
	$(GO) test -race $(RACE_PKGS)

# internal/experiments retrains models and renders every figure; under the
# race runtime that exceeds go test's default 10m binary timeout
race:
	$(GO) test -race -timeout 45m ./...

# short-budget smoke: fewer campaigns than the acceptance gate, same scoring
soak-smoke:
	$(GO) run ./cmd/monitor -soak -campaigns 6

soak:
	$(GO) run ./cmd/monitor -soak -campaigns 20
