# Tier-1 gate: everything `make check` runs must stay green.
#
#   make check   vet + build + full test suite + race detector on the
#                hardened-runtime packages + short campaign, fleet,
#                serving-chaos, network-tier, crash/disk-fault and
#                repair-ladder lifetime soak smokes + a short fuzz pass over
#                the journal record and snapshot decoders and the f32 kernel
#                envelope + the batched inference, training and
#                multi-precision performance gates (bench-smoke)
#   make bench-smoke  gate the batched monitor readout and the engine
#                training step against the committed baseline ratios (min
#                speedup over the legacy paths, max allocs/op), after
#                asserting bit-identity; fails on regression
#   make race    race detector over the whole tree (slow: retrains models
#                under the race runtime)
#   make soak    the full 20-campaign acceptance soak with scorecard
#   make fleet-soak  the full fleet crash/restart acceptance soak
#   make lifetime-soak  the full 9-seed repair-ladder lifetime soak
#   make net-soak  the full network-tier chaos soak (4 × 250k-request
#                campaigns = the million-request gate)
#   make crash-soak  the full durable-state torture matrix (8 seeded
#                matrices of crash-point × disk-fault cells)

GO ?= go

# The packages with concurrency-sensitive or newly hardened logic; raced on
# every check. `make race` covers the rest.
RACE_PKGS = ./internal/health/... ./internal/campaign/... ./internal/monitor/... \
            ./internal/detect/... ./internal/stats/... ./internal/repair/... \
            ./internal/fleet/... ./internal/journal/... ./internal/engine/... \
            ./internal/tensor/... ./internal/serve/... ./internal/tengine/... \
            ./internal/netserve/... ./internal/loadgen/... \
            ./internal/reram/... ./internal/hwcost/...

.PHONY: check vet build test race-fast race soak-smoke soak \
        fleet-soak-smoke fleet-soak serve-soak-smoke serve-soak \
        net-soak-smoke net-soak crash-soak-smoke crash-soak \
        lifetime-soak-smoke lifetime-soak fuzz-short bench-smoke

check: vet build test race-fast soak-smoke fleet-soak-smoke serve-soak-smoke net-soak-smoke crash-soak-smoke lifetime-soak-smoke fuzz-short bench-smoke
	@echo "check: PASS"

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race-fast:
	$(GO) test -race $(RACE_PKGS)

# internal/experiments retrains models and renders every figure; under the
# race runtime that exceeds go test's default 10m binary timeout
race:
	$(GO) test -race -timeout 45m ./...

# short-budget smoke: fewer campaigns than the acceptance gate, same scoring
soak-smoke:
	$(GO) run ./cmd/monitor -soak -campaigns 6

soak:
	$(GO) run ./cmd/monitor -soak -campaigns 20

# fleet crash/restart soak: each campaign is run crashed AND uninterrupted
# from the same seed; the gate demands zero state divergence after replay
fleet-soak-smoke:
	$(GO) run ./cmd/monitor -fleet-soak -campaigns 3

fleet-soak:
	$(GO) run ./cmd/monitor -fleet-soak -campaigns 10

# repair-ladder lifetime soak: each seed runs three arms — the scrub →
# remap → retrain escalation ladder, a retrain-only control in the same
# cost units, and the ladder crash-replayed from its journal — gated on
# the ladder beating the control on budget spend and retirements at an
# equal-or-better fidelity floor, zero untyped strategy errors, and exact
# crash/restart parity on journaled strategy decisions
lifetime-soak-smoke:
	$(GO) run ./cmd/monitor -lifetime-soak -seed 5 -campaigns 3

lifetime-soak:
	$(GO) run ./cmd/monitor -lifetime-soak -seed 3 -campaigns 9

# serving-frontend chaos soak: concurrent traffic with injected slow
# readouts, mid-request crashes and deadline storms; gated on zero hung
# requests, zero silent drops, bounded p99 vs a no-chaos baseline, and zero
# leaked goroutines
serve-soak-smoke:
	$(GO) run ./cmd/monitor -serve-soak -campaigns 3

serve-soak:
	$(GO) run ./cmd/monitor -serve-soak -campaigns 10

# network-tier chaos soak: seeded multi-tenant HTTP campaigns against the
# sharded serving tier over a live loopback listener, with device chaos and
# a mid-campaign graceful shard drain; gated on zero hung calls, exact typed
# accounting (admitted == terminal), post-drain liveness, bounded p99 vs a
# same-seed baseline, and zero leaked goroutines. The full gate runs
# million-request campaigns; the smoke keeps CI fast.
net-soak-smoke:
	$(GO) run ./cmd/monitor -net-soak -campaigns 2

net-soak:
	$(GO) run ./cmd/monitor -net-soak -campaigns 4 -net-requests 250000

# durable-state torture matrix: every (crash point × disk fault) cell runs a
# seeded fleet campaign over the snapshot-compacting journal store, kills it,
# injects the fault (torn tails, torn renames, corrupt snapshots, ENOSPC,
# failed fsyncs, crash-at-byte tears), recovers, and gates on bit-identical
# state, bounded WAL size and zero acknowledged-then-lost writes
crash-soak-smoke:
	$(GO) run ./cmd/monitor -crash-soak -campaigns 2 -devices 2

crash-soak:
	$(GO) run ./cmd/monitor -crash-soak -campaigns 8 -devices 3

# short coverage-guided pass over the journal record decoder, the snapshot
# decoder and the f32-vs-f64 matmul envelope (committed corpora seed all
# three; go's fuzzer takes one target per invocation)
fuzz-short:
	$(GO) test ./internal/journal -run='^$$' -fuzz=FuzzDecodeAll -fuzztime=10s
	$(GO) test ./internal/journal -run='^$$' -fuzz=FuzzDecodeSnapshot -fuzztime=10s
	$(GO) test ./internal/tensor -run='^$$' -fuzz=FuzzMatMulF32VsF64 -fuzztime=10s

# performance gate on the batch-first inference AND training engines, the
# hardware cost accounting layer and the multi-precision kernel tier: the
# batched monitor readout must stay bit-identical to the serial path, the
# engine training step must land on bit-identical weights across the legacy,
# serial-engine and pooled-engine arms, metering must be numerically
# invisible (metered accelerator bit-identical to an unmetered twin) with a
# zero-allocation counting hot path, the f32 tier must hold its row-scaled
# ULP envelope, the i8 tier must equal the quantize-then-f64 oracle bitwise,
# and every path must beat its committed baseline ratio
bench-smoke:
	$(GO) run ./cmd/benchsmoke
