package reramtest_test

import (
	"testing"

	"reramtest/internal/dataset"
	"reramtest/internal/detect"
	"reramtest/internal/faults"
	"reramtest/internal/models"
	"reramtest/internal/monitor"
	"reramtest/internal/nn"
	"reramtest/internal/opt"
	"reramtest/internal/repair"
	"reramtest/internal/reram"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
	"reramtest/internal/testgen"
)

// trainPipelineModel fits a small classifier used by all integration tests
// (train once, reuse).
var pipelineModel *nn.Network
var pipelineData *dataset.Dataset

func pipeline(t *testing.T) (*nn.Network, *dataset.Dataset) {
	t.Helper()
	if pipelineModel != nil {
		return pipelineModel, pipelineData
	}
	train := dataset.SynthDigits(900, dataset.DefaultDigitsConfig(800))
	net := models.MLP(rng.New(901), train.SampleDim(), []int{48}, 10)
	sgd := opt.NewSGD(net.Params(), 0.05, 0.9, 0)
	r := rng.New(902)
	for epoch := 0; epoch < 5; epoch++ {
		for _, b := range train.Batches(32, r) {
			logits := net.Forward(b.X)
			_, grad := nn.CrossEntropy(logits, b.Y)
			net.ZeroGrad()
			net.Backward(grad)
			sgd.Step()
		}
	}
	if acc := net.Accuracy(train.X, train.Y, 64); acc < 0.9 {
		t.Fatalf("pipeline model failed to train: %.2f", acc)
	}
	pipelineModel, pipelineData = net, train
	return net, train
}

// TestEndToEndDetectionPipeline exercises the full paper flow on a live
// model: generate all three pattern families, capture goldens, inject
// errors of increasing severity, and verify the paper's qualitative claims.
func TestEndToEndDetectionPipeline(t *testing.T) {
	net, data := pipeline(t)

	ref := faults.MakeFaulty(net, faults.LogNormal{Sigma: 0.3}, 1)
	otp, _ := testgen.GenerateOTP(net, ref, 10, testgen.DefaultOTPConfig(), rng.New(2))
	ctp := testgen.SelectCTP(net, data, 30)
	aet := testgen.GenerateAET(net, data, 30, testgen.DefaultAETConfig(), rng.New(3))
	plain := testgen.SelectPlain(data, 30)

	goldens := map[string]*detect.Golden{
		"otp": detect.Capture(net, otp), "ctp": detect.Capture(net, ctp),
		"aet": detect.Capture(net, aet), "plain": detect.Capture(net, plain),
	}

	// severity must increase every method's distance monotonically (on
	// average over a few fault models)
	for name, g := range goldens {
		prev := -1.0
		for _, sigma := range []float64{0.1, 0.3, 0.6} {
			sum := 0.0
			const k = 5
			for i := int64(0); i < k; i++ {
				fm := faults.MakeFaulty(net, faults.LogNormal{Sigma: sigma}, 100+i)
				sum += g.Observe(fm).AllDist
			}
			d := sum / k
			if d <= prev {
				t.Errorf("%s distance not increasing: %.4f after %.4f", name, d, prev)
			}
			prev = d
		}
	}

	// the paper's Fig. 8 point: special patterns out-signal plain images
	fm := faults.MakeFaulty(net, faults.LogNormal{Sigma: 0.3}, 7)
	plainDist := goldens["plain"].Observe(fm).AllDist
	for _, name := range []string{"otp", "ctp"} {
		if d := goldens[name].Observe(fm).AllDist; d <= plainDist {
			t.Errorf("%s distance %.4f not above plain-image distance %.4f", name, d, plainDist)
		}
	}
}

// TestEndToEndHardwarePipeline runs the device-level story: map the model
// onto crossbars, verify weight-level and device-level views agree, age the
// device, detect, repair, verify recovery.
func TestEndToEndHardwarePipeline(t *testing.T) {
	net, data := pipeline(t)
	eval := data.Head(200)

	cfg := reram.DefaultConfig()
	cfg.DACBits, cfg.ADCBits = 0, 0
	cfg.Device.ProgramSigma = 0
	cfg.Device.DriftRate = 0.001
	cfg.Device.DriftJitter = 0
	cfg.Device.SoftErrorRate = 0
	accel := reram.NewAccelerator(net, cfg, 42)

	// device view == digital view at commissioning
	d0 := net.Accuracy(eval.X, eval.Y, 64)
	a0 := accel.ReadoutNetwork().Accuracy(eval.X, eval.Y, 64)
	if d0 != a0 {
		t.Fatalf("commissioned accelerator accuracy %.3f != digital %.3f", a0, d0)
	}

	// age and damage
	accel.AdvanceTime(800)
	accel.InjectStuckAt(0.01, 0.01)
	damaged := accel.ReadoutNetwork().Accuracy(eval.X, eval.Y, 64)
	if damaged >= d0 {
		t.Fatalf("aging did not damage accuracy: %.3f vs %.3f", damaged, d0)
	}

	// the monitor sees it
	ctp := testgen.SelectCTP(net, data, 30)
	mon, err := monitor.New(net, ctp, nil, monitor.DefaultConfig())
	if err != nil {
		t.Fatalf("monitor.New: %v", err)
	}
	rep := mon.Check(func(x *tensor.Tensor) *tensor.Tensor {
		return nn.Softmax(accel.ReadoutNetwork().Forward(x))
	})
	if rep.Status == monitor.Healthy {
		t.Fatalf("monitor missed damage (dist %.4f, accuracy %.3f→%.3f)", rep.AllDist, d0, damaged)
	}

	// repair: diagnose + retrain + redeploy
	stuck, err := repair.DiagnoseStuck(accel, net, 0.3)
	if err != nil {
		t.Fatalf("DiagnoseStuck: %v", err)
	}
	if stuck.Count() == 0 {
		t.Fatal("diagnosis found no stuck cells after injection")
	}
	faulty := accel.ReadoutNetwork()
	rcfg := repair.DefaultRetrainConfig()
	rcfg.Epochs = 2
	repair.RetrainAround(faulty, stuck, data, nil, rcfg)
	accel.ProgramNetwork(faulty)
	repaired := accel.ReadoutNetwork().Accuracy(eval.X, eval.Y, 64)
	if repaired <= damaged {
		t.Fatalf("repair did not recover accuracy: %.3f (damaged %.3f)", repaired, damaged)
	}
}
