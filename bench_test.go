// Package reramtest_test benchmarks the full reproduction pipeline: one
// benchmark per table and figure of the paper's evaluation section, plus
// microbenchmarks of the hot paths (inference, pattern observation, O-TP
// optimization steps).
//
// Each BenchmarkTableN/BenchmarkFigN regenerates the corresponding result
// through internal/experiments; the first iteration pays the real cost and
// later iterations hit the Env's sweep caches, so reported ns/op approaches
// the incremental cost. Use `go run ./cmd/experiment -id all` to print the
// actual rows and series.
package reramtest_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"reramtest/internal/detect"
	"reramtest/internal/engine"
	"reramtest/internal/experiments"
	"reramtest/internal/faults"
	"reramtest/internal/models"
	"reramtest/internal/nn"
	"reramtest/internal/reram"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
	"reramtest/internal/testgen"
)

var (
	envOnce  sync.Once
	benchEnv *experiments.Env
	envErr   error
)

// env returns the shared experiment environment. Benches are skipped when
// the trained-weight cache is missing (run `go run ./cmd/train` once).
func env(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() {
		scale := experiments.DefaultScale()
		// keep the bench suite to minutes on one core; REPRO_FULL=1
		// restores the paper-scale counts
		if os.Getenv("REPRO_FULL") != "1" {
			scale.FaultModels = 10
			scale.AccModels = 3
			scale.AccImages = 300
		}
		benchEnv, envErr = experiments.NewEnv(scale, nil)
	})
	if envErr != nil {
		b.Skipf("experiment environment unavailable: %v", envErr)
	}
	return benchEnv
}

// BenchmarkTable1 regenerates Table I: LeNet-5 accuracy vs programming-error
// σ.
func BenchmarkTable1(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		if tab := e.Table1(); tab.CleanAcc == 0 {
			b.Fatal("empty Table I")
		}
	}
}

// BenchmarkTable2 regenerates Table II: ConvNet-7 accuracy vs σ.
func BenchmarkTable2(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		if tab := e.Table2(); tab.CleanAcc == 0 {
			b.Fatal("empty Table II")
		}
	}
}

// BenchmarkTable3 regenerates Table III: average detection rates of
// AET/C-TP/O-TP under all six SDC criteria on both models.
func BenchmarkTable3(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		tab := e.Table3()
		if len(tab.Rates) != 2 {
			b.Fatal("incomplete Table III")
		}
	}
}

// BenchmarkTable4 regenerates Table IV: the CV stability metric per σ.
func BenchmarkTable4(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		tab := e.Table4()
		if len(tab.CV) != len(experiments.Methods) {
			b.Fatal("incomplete Table IV")
		}
	}
}

// BenchmarkFig3 regenerates Fig. 3: confidence distances vs σ.
func BenchmarkFig3(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		f := e.Fig3()
		if len(f.Top) != 2 {
			b.Fatal("incomplete Fig 3")
		}
	}
}

// BenchmarkFig4 regenerates Fig. 4: detection rate vs σ on the
// confidence-distance criteria.
func BenchmarkFig4(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		f := e.Fig4()
		if len(f.Criteria) != 4 {
			b.Fatal("incomplete Fig 4")
		}
	}
}

// BenchmarkFig5 regenerates Fig. 5: detection rate vs σ on SDC-1/SDC-5.
func BenchmarkFig5(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		f := e.Fig5()
		if len(f.Criteria) != 2 {
			b.Fatal("incomplete Fig 5")
		}
	}
}

// BenchmarkFig6 regenerates Fig. 6: detection rates under random soft
// errors.
func BenchmarkFig6(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		f := e.Fig6()
		if len(f.Criteria) != 6 {
			b.Fatal("incomplete Fig 6")
		}
	}
}

// BenchmarkFig7 regenerates Fig. 7: distance std vs pattern budget.
func BenchmarkFig7(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		f := e.Fig7()
		if len(f.Std) != 2 {
			b.Fatal("incomplete Fig 7")
		}
	}
}

// BenchmarkFig8 regenerates Fig. 8: confidence distance vs model accuracy
// with the linearity fits.
func BenchmarkFig8(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		f := e.Fig8()
		if f.Slope["otp"] == 0 {
			b.Fatal("incomplete Fig 8")
		}
	}
}

// BenchmarkLeNetInference measures single-image digital inference on the
// trained LeNet-5 — the unit of work every concurrent-test observation
// multiplies.
func BenchmarkLeNetInference(b *testing.B) {
	e := env(b)
	x := e.DigitsTest.Input(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.LeNet.Forward(x)
	}
}

// BenchmarkConvNetInference measures single-image inference on ConvNet-7.
func BenchmarkConvNetInference(b *testing.B) {
	e := env(b)
	x := e.ObjectsTest.Input(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ConvNet.Forward(x)
	}
}

// BenchmarkConcurrentTestRound measures one full monitor round: 10 O-TP
// patterns through LeNet-5 plus golden comparison — the recurring run-time
// cost the paper's "cost-effective" claim is about (vs. the 10K-image
// alternative).
func BenchmarkConcurrentTestRound(b *testing.B) {
	e := env(b)
	patterns := e.PatternsDefault("lenet5", "otp")
	golden := detect.Capture(e.LeNet, patterns)
	faulty := faults.MakeFaulty(e.LeNet, faults.LogNormal{Sigma: 0.2}, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := golden.Observe(faulty)
		if o.AllDist < 0 {
			b.Fatal("impossible distance")
		}
	}
}

// BenchmarkFullTestSetEvaluation measures the cost the paper's method
// replaces: scoring accuracy over an entire test split.
func BenchmarkFullTestSetEvaluation(b *testing.B) {
	e := env(b)
	eval := e.DigitsTest.Head(300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.LeNet.Accuracy(eval.X, eval.Y, 64)
	}
}

// BenchmarkFaultModelGeneration measures cloning + lognormal injection.
func BenchmarkFaultModelGeneration(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		faults.MakeFaulty(e.LeNet, faults.LogNormal{Sigma: 0.3}, int64(i))
	}
}

// BenchmarkOTPIteration measures one Algorithm-1 gradient step on a 10-
// pattern batch (both model passes), the unit cost of O-TP generation.
func BenchmarkOTPIteration(b *testing.B) {
	e := env(b)
	ref := faults.MakeFaulty(e.LeNet, faults.LogNormal{Sigma: 0.3}, 3)
	cfg := testgen.DefaultOTPConfig()
	cfg.MaxIters = 1 // exactly one optimization step per call
	r := rng.New(11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		testgen.GenerateOTP(e.LeNet, ref, 10, cfg, r)
	}
}

// BenchmarkCTPSelection measures corner-data ranking over the full
// inference pool.
func BenchmarkCTPSelection(b *testing.B) {
	e := env(b)
	pool := e.PoolFor("lenet5").Head(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		testgen.SelectCTP(e.LeNet, pool, 50)
	}
}

// BenchmarkCrossbarReadout measures exporting effective weights from the
// simulated accelerator — the bridge between device-level state and the
// weight-level fault models.
func BenchmarkCrossbarReadout(b *testing.B) {
	e := env(b)
	accel := reram.NewAccelerator(e.LeNet, reram.DefaultConfig(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		accel.ReadoutNetwork()
	}
}

// BenchmarkCrossbarAnalogMatVec measures one DAC→crossbar→ADC matrix-vector
// product on a 128×128 differential tile pair.
func BenchmarkCrossbarAnalogMatVec(b *testing.B) {
	r := rng.New(5)
	w := tensor.Randn(r, 0, 0.5, 128, 128)
	tl := reram.MapLinear(w, reram.DefaultConfig(), r)
	x := make([]float64, 128)
	rng.New(6).FillUniform(x, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.MatVec(x)
	}
}

// BenchmarkAblationCTPPool regenerates the C-TP pool-depth ablation.
func BenchmarkAblationCTPPool(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		r := e.AblationCTPPool()
		if len(r.PoolSizes) == 0 {
			b.Fatal("empty pool ablation")
		}
	}
}

// BenchmarkAblationADCBits regenerates the converter-resolution ablation.
func BenchmarkAblationADCBits(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		r := e.AblationADCBits()
		if len(r.Accuracy) == 0 {
			b.Fatal("empty ADC ablation")
		}
	}
}

// batchBenchModels builds the serial-vs-batched benchmark workloads. These
// run on untrained weights (inference cost is weight-value independent) so
// the comparison needs no trained-weight cache and never skips.
func batchBenchModels() []struct {
	name string
	net  *nn.Network
} {
	return []struct {
		name string
		net  *nn.Network
	}{
		{"mlp", models.MLP(rng.New(1), 16, []int{24, 16}, 6)},
		{"lenet5", models.LeNet5(rng.New(2))},
	}
}

// BenchmarkForwardSerial measures the pre-engine monitor readout: each
// pattern cloned through the per-sample training-path forward plus softmax.
func BenchmarkForwardSerial(b *testing.B) {
	for _, m := range batchBenchModels() {
		for _, n := range []int{1, 16, 64} {
			b.Run(fmt.Sprintf("%s/B%d", m.name, n), func(b *testing.B) {
				x := tensor.RandUniform(rng.New(3), 0, 1, n, m.net.InDim())
				rows := make([]*tensor.Tensor, n)
				for s := 0; s < n; s++ {
					rows[s] = tensor.FromSlice(x.Data()[s*m.net.InDim():(s+1)*m.net.InDim()], 1, m.net.InDim())
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, row := range rows {
						nn.Softmax(m.net.Forward(row))
					}
				}
			})
		}
	}
}

// BenchmarkForwardBatched measures the same readout through a compiled
// batch-first engine: one Probs call over the whole batch, reusing
// workspaces (0 allocs/op in steady state — asserted by
// TestBatchedForwardAllocFree).
func BenchmarkForwardBatched(b *testing.B) {
	for _, m := range batchBenchModels() {
		eng := engine.MustCompile(m.net, engine.Options{})
		for _, n := range []int{1, 16, 64} {
			b.Run(fmt.Sprintf("%s/B%d", m.name, n), func(b *testing.B) {
				x := tensor.RandUniform(rng.New(3), 0, 1, n, m.net.InDim())
				eng.Probs(x) // warm the workspaces outside the timer
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.Probs(x)
				}
			})
		}
	}
}

// TestBatchedForwardAllocFree asserts the engine's steady-state contract on
// the benchmark workloads: after warmup, a same-size batch performs zero
// allocations per readout.
func TestBatchedForwardAllocFree(t *testing.T) {
	for _, m := range batchBenchModels() {
		eng := engine.MustCompile(m.net, engine.Options{})
		for _, n := range []int{1, 16, 64} {
			x := tensor.RandUniform(rng.New(4), 0, 1, n, m.net.InDim())
			eng.Probs(x) // warmup sizes the workspaces for this batch
			if allocs := testing.AllocsPerRun(20, func() { eng.Probs(x) }); allocs != 0 {
				t.Errorf("%s B=%d: %v allocs/op in steady state, want 0", m.name, n, allocs)
			}
		}
	}
}
