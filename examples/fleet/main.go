// Fleet supervision: the deployment story the paper's cost argument scales
// to — a rack of ReRAM accelerators, each monitored by the concurrent-test
// runtime, under one supervisor that journals every durable state change,
// quarantines devices whose sensors go dark (circuit breaker, not retry
// burning), and routes inference traffic only to devices whose confirmed
// health allows it.
//
// The demo drives three simulated devices through field damage and shows the
// three fleet behaviours in order:
//
//	resistance drift on accel-01 → raw evidence escalates, debounce holds →
//	    confirmed, repaired and verified in one supervised round
//	a dead sensor on accel-02    → breaker trips after 2 faulty rounds →
//	    quarantined (zero traffic) → cooldown → half-open probe → recovered
//	a supervisor crash mid-run   → the process state is rebuilt byte-for-
//	    byte by replaying the write-ahead journal (with a deliberately
//	    corrupted tail that replay truncates rather than trusts)
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"os"
	"strings"

	"reramtest/internal/campaign"
	"reramtest/internal/fleet"
	"reramtest/internal/health"
	"reramtest/internal/journal"
	"reramtest/internal/monitor"
	"reramtest/internal/nn"
	"reramtest/internal/testgen"
)

// device adapts a campaign plant (simulated accelerator + repair mechanisms)
// to the fleet.Device contract. The plant is the hardware: it survives
// supervisor crashes.
type device struct {
	id    string
	plant *campaign.Plant
}

func (d device) ID() string                    { return d.id }
func (d device) Infer() monitor.Infer          { return d.plant.Infer() }
func (d device) Repairer() health.Repairer     { return d.plant }
func (d device) Reference() *nn.Network        { return d.plant.Reference() }
func (d device) Patterns() *testgen.PatternSet { return d.plant.Patterns() }

func main() {
	fcfg := fleet.DefaultConfig()
	fcfg.Health = campaign.DefaultConfig().Health // simulated time, debounced
	fcfg.Monitor = monitor.DefaultConfig()
	fcfg.BreakerOpenAfter = 2
	fcfg.BreakerCooldown = 3
	fcfg.RepairBudget = 8
	fcfg.MinServing = 1

	fmt.Println("commissioning a 3-device fleet (shared workload model, individual device physics)")
	plants := make([]*campaign.Plant, 3)
	devices := make([]fleet.Device, 3)
	for i := range plants {
		plants[i] = campaign.NewPlant(int64(100+i), campaign.DefaultPlantConfig())
		devices[i] = device{id: fmt.Sprintf("accel-%02d", i), plant: plants[i]}
	}

	wal, err := os.CreateTemp("", "fleet-demo-*.wal")
	fatal(err)
	path := wal.Name()
	wal.Close()
	defer os.Remove(path)
	jw, err := journal.Create(path)
	fatal(err)
	fmt.Printf("write-ahead journal: %s\n\n", path)

	sup, err := fleet.New(devices, fcfg, jw)
	fatal(err)

	for round := 1; round <= 18; round++ {
		for _, p := range plants {
			p.SetRound(round)
		}
		switch round {
		case 4:
			fmt.Println("--- field event: 1100h of resistance drift lands on accel-01")
			plants[1].Accelerator().AdvanceTime(1100)
		case 9:
			fmt.Println("--- field event: accel-02's readout sensor dies for 4 rounds")
			plants[2].StartGlitch(campaign.GlitchPanic, 9, 4)
		}

		results, err := sup.Tick()
		fatal(err)
		for _, rr := range results {
			fmt.Printf("  %s\n", rr)
		}

		// place a burst of traffic and show where the router put it
		placed := map[string]int{}
		sheds := 0
		for q := 0; q < 8; q++ {
			if id, ok := sup.Dispatch(); ok {
				placed[id]++
				defer sup.Complete(id)
			} else {
				sheds++
			}
		}
		var parts []string
		for _, id := range sup.DeviceIDs() {
			parts = append(parts, fmt.Sprintf("%s:%d", id, placed[id]))
		}
		if sheds > 0 {
			parts = append(parts, fmt.Sprintf("shed:%d", sheds))
		}
		fmt.Printf("  traffic  %s\n\n", strings.Join(parts, "  "))

		if round == 12 {
			fmt.Println("--- supervisor process killed; corrupting the journal tail to simulate a torn write")
			fatal(jw.Close())
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			fatal(err)
			_, err = f.Write([]byte{0xA7, 0x40, 0x00, 0x00, 0x00, 0xde, 0xad})
			fatal(err)
			fatal(f.Close())

			var payloads [][]byte
			var truncated int
			jw, payloads, truncated, err = journal.OpenAppend(path)
			fatal(err)
			fmt.Printf("--- replay: %d records recovered, %d corrupt tail bytes truncated\n", len(payloads), truncated)
			sup, err = fleet.Resume(devices, fcfg, jw, payloads)
			fatal(err)
			fmt.Printf("--- supervisor resumed at round %d with identical confirmed statuses and budgets\n\n", sup.Round())
		}
	}

	routed, sheds := sup.Router().Stats()
	fmt.Printf("final: serving=%v quarantined=%v routed=%d shed=%d\n",
		sup.Serving(), sup.Quarantined(), routed, sheds)
	for _, id := range sup.DeviceIDs() {
		snap := sup.Snapshot()[id]
		fmt.Printf("  %s: confirmed=%s budgetLeft=%d breaker=%s retired=%v\n",
			id, snap.State.Confirmed, snap.Budget, snap.Breaker.State, snap.Retired)
	}
	fatal(jw.Close())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleet demo:", err)
		os.Exit(1)
	}
}
