// Fault detection: the paper's core comparison on live models. All three
// pattern families (AET baseline, C-TP, O-TP) score the same set of fault
// models across the programming-error sweep, reporting per-σ detection
// rates under the SDC-A3% criterion — the regime where the paper shows AET
// collapsing while C-TP/O-TP stay at 100%.
//
//	go run ./examples/fault_detection
package main

import (
	"fmt"
	"os"

	"reramtest/internal/detect"
	"reramtest/internal/experiments"
	"reramtest/internal/faults"
)

func main() {
	env, err := experiments.NewEnv(experiments.DefaultScale(), os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fault_detection:", err)
		os.Exit(1)
	}
	net, _ := env.ModelFor("lenet5")

	goldens := map[string]*detect.Golden{}
	for _, m := range experiments.Methods {
		p := env.PatternsDefault("lenet5", m)
		goldens[m] = detect.Capture(net, p)
		fmt.Printf("%-4s: %d patterns armed\n", m, p.M())
	}
	fmt.Println()

	const perSigma = 10
	fmt.Printf("%-6s %-10s %-10s %-10s  (SDC-A3%% detection rate over %d fault models)\n",
		"σ", "AET", "C-TP", "O-TP", perSigma)
	for _, sigma := range experiments.LeNetSigmas {
		fms := faults.MakeFaultySet(net, faults.LogNormal{Sigma: sigma}, perSigma, int64(sigma*10000))
		fmt.Printf("%-6.2f", sigma)
		for _, m := range experiments.Methods {
			rates := goldens[m].DetectionRate(fms, []detect.Criterion{detect.SDCA3})
			fmt.Printf(" %-10s", fmt.Sprintf("%.0f%%", 100*rates[detect.SDCA3]))
		}
		fmt.Println()
	}
}
