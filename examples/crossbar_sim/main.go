// Crossbar simulation: maps a trained model onto simulated ReRAM crossbar
// tiles and shows (1) that the analog path with 8-bit DAC/ADC reproduces the
// digital accuracy, and (2) how programming variation, drift and stuck-at
// faults at the *device* level surface as the accuracy loss the paper's
// weight-level error models abstract.
//
//	go run ./examples/crossbar_sim
package main

import (
	"fmt"
	"os"

	"reramtest/internal/dataset"
	"reramtest/internal/experiments"
	"reramtest/internal/reram"
	"reramtest/internal/tensor"
)

func main() {
	env, err := experiments.NewEnv(experiments.DefaultScale(), os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crossbar_sim:", err)
		os.Exit(1)
	}
	net, test := env.ModelFor("lenet5")
	eval := test.Head(200)
	digital := net.Accuracy(eval.X, eval.Y, 64)
	fmt.Printf("digital reference accuracy: %.1f%%\n\n", 100*digital)

	// 1. ideal devices, real converters: the analog path itself
	cfg := reram.DefaultConfig()
	accel := reram.NewAccelerator(net, cfg, 1)
	fmt.Printf("mapped onto %d crossbars (%dx%d, %d-bit DAC, %d-bit ADC)\n",
		accel.TileCount(), cfg.TileRows, cfg.TileCols, cfg.DACBits, cfg.ADCBits)
	small := test.Head(50)
	analogAcc := accuracyVia(accel.Infer, small)
	fmt.Printf("analog-path accuracy (50 images, ideal cells): %.1f%%\n\n", 100*analogAcc)

	// 2. device-level degradation: programming noise, aging, stuck-ats
	fmt.Printf("%-40s %s\n", "device condition", "accuracy (readout network)")
	for _, c := range []struct {
		name  string
		build func() *reram.Accelerator
	}{
		{"ideal cells", func() *reram.Accelerator {
			return reram.NewAccelerator(net, cfg, 2)
		}},
		{"programming σ=0.1", func() *reram.Accelerator {
			c := cfg
			c.Device.ProgramSigma = 0.1
			return reram.NewAccelerator(net, c, 3)
		}},
		{"programming σ=0.1 + 2000h drift", func() *reram.Accelerator {
			c := cfg
			c.Device.ProgramSigma = 0.1
			a := reram.NewAccelerator(net, c, 4)
			a.AdvanceTime(2000)
			return a
		}},
		{"1% SA0 + 0.5% SA1 stuck cells", func() *reram.Accelerator {
			a := reram.NewAccelerator(net, cfg, 5)
			a.InjectStuckAt(0.01, 0.005)
			return a
		}},
	} {
		a := c.build()
		acc := a.ReadoutNetwork().Accuracy(eval.X, eval.Y, 64)
		fmt.Printf("%-40s %.1f%%\n", c.name, 100*acc)
	}
}

// accuracyVia measures top-1 accuracy through an arbitrary logits function,
// one sample at a time (the analog path is unbatched inside anyway).
func accuracyVia(infer func(*tensor.Tensor) *tensor.Tensor, d *dataset.Dataset) float64 {
	correct := 0
	for i := 0; i < d.N(); i++ {
		logits := infer(d.Input(i))
		if logits.ArgMax() == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.N())
}
