// Network serving tier: the layer that turns several supervised fleets into
// one HTTP service while the paper's concurrent-test monitoring keeps
// running underneath every shard. The demo stands up a 2-shard tier on a
// loopback listener and walks its full repertoire, in order:
//
//	tenant placement      → consistent hashing pins each tenant to a shard;
//	                        the same tenant always lands in the same place
//	admission quotas      → a tenant that exceeds its token bucket gets a
//	                        typed 429 with Retry-After, not queueing delay
//	header deadlines      → X-Deadline-Ms propagates through context into
//	                        the shard and comes back as a typed 504
//	degraded serving      → answers from drifting silicon are 200s with a
//	                        degraded flag; the caller decides their worth
//	graceful drain        → one shard retires mid-traffic; its tenants
//	                        rebalance to the survivor with zero silent drops
//	close                 → final accounting: received is fully classified,
//	                        admitted == terminal typed outcomes
//
//	go run ./examples/netserving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"reramtest/internal/campaign"
	"reramtest/internal/fleet"
	"reramtest/internal/monitor"
	"reramtest/internal/netserve"
	"reramtest/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netserving:", err)
		os.Exit(1)
	}
}

func run() error {
	base := campaign.DefaultNetSoakConfig()
	ncfg := base.Net
	ncfg.Quota = netserve.QuotaConfig{Rate: 1, Burst: 3} // tiny: the demo trips it on purpose

	specs := make([]netserve.ShardSpec, 2)
	for i := range specs {
		specs[i] = netserve.ShardSpec{
			Name:    fmt.Sprintf("shard-%d", i),
			Devices: campaign.EngineDevices(int64(i+1), 2, fmt.Sprintf("s%d", i)),
			Fleet:   base.Fleet,
			Serve:   base.Serve,
		}
	}
	f, err := netserve.New(specs, ncfg)
	if err != nil {
		return err
	}
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()
	fmt.Printf("tier up: 2 shards × 2 devices at %s (input width %d)\n\n", ts.URL, f.InDim())

	// --- tenant placement: hashing is stable per tenant
	fmt.Println("— consistent placement —")
	for _, tenant := range []string{"alice", "bob"} {
		shards := map[string]bool{}
		for i := 0; i < 3; i++ {
			_, body, err := infer(ts.URL, tenant, 1, "")
			if err != nil {
				return err
			}
			shards[body["shard"].(string)] = true
		}
		fmt.Printf("  tenant %-6s → always %v\n", tenant, keys(shards))
	}

	// --- quotas: burst of 3 rows, then a typed 429
	fmt.Println("\n— admission quota (1 row/s, burst 3) —")
	for i := 1; i <= 4; i++ {
		code, body, err := infer(ts.URL, "greedy", 1, "")
		if err != nil {
			return err
		}
		if code == http.StatusOK {
			fmt.Printf("  request %d: 200 ok\n", i)
		} else {
			fmt.Printf("  request %d: %d %v — the bucket is dry\n", i, code, body["error"])
		}
	}

	// --- header deadline: a stalled accelerator cannot hold the caller past
	// its budget — a one-shard tier of deliberately slow devices answers an
	// X-Deadline-Ms: 25 request with a typed 504 in ~25ms
	fmt.Println("\n— header deadline —")
	if err := deadlineDemo(base); err != nil {
		return err
	}

	// --- graceful drain: shard-0 retires, fresh tenants rebalance
	fmt.Println("\n— graceful drain —")
	if err := f.DrainShard("shard-0"); err != nil {
		return err
	}
	served, moved := 0, 0
	for _, tenant := range []string{"erin", "frank", "gina", "hank"} {
		code, body, err := infer(ts.URL, tenant, 1, "")
		if err != nil {
			return err
		}
		if code == http.StatusOK {
			served++
			if body["shard"] == "shard-1" {
				moved++
			}
		}
	}
	fmt.Printf("  shard-0 drained; %d/4 fresh tenants served, %d/4 on the surviving shard\n", served, moved)

	// --- close and audit
	if err := f.Close(); err != nil {
		return err
	}
	st := f.Stats()
	fmt.Println("\n— final accounting —")
	fmt.Printf("  received %d = invalid %d + quota %d + closed %d + admitted %d\n",
		st.Received, st.Invalid, st.QuotaRejected, st.ClosedRejected, st.Admitted)
	fmt.Printf("  admitted %d == terminal %d: %v (zero silent drops)\n",
		st.Admitted, st.Terminal(), st.Admitted == st.Terminal())
	if st.Admitted != st.Terminal() {
		return fmt.Errorf("accounting violated: admitted %d != terminal %d", st.Admitted, st.Terminal())
	}
	return nil
}

// slowDevice stalls every readout — the deadline demo's stand-in for a
// wedged accelerator.
type slowDevice struct {
	fleet.Device
	delay time.Duration
}

func (d slowDevice) Infer() monitor.Infer {
	inner := d.Device.Infer()
	return func(x *tensor.Tensor) *tensor.Tensor {
		time.Sleep(d.delay)
		return inner(x)
	}
}

// deadlineDemo runs one request with a 25ms header deadline against a tier
// whose only devices stall for 300ms.
func deadlineDemo(base campaign.NetSoakConfig) error {
	devs := campaign.EngineDevices(9, 2, "slow")
	for i := range devs {
		devs[i] = slowDevice{Device: devs[i], delay: 300 * time.Millisecond}
	}
	// one extra healthy shard so the 2-shard minimum holds; the tenant is
	// picked to hash onto the slow shard
	specs := []netserve.ShardSpec{
		{Name: "shard-slow", Devices: devs, Fleet: base.Fleet, Serve: base.Serve},
		{Name: "shard-live", Devices: campaign.EngineDevices(10, 1, "live"), Fleet: base.Fleet, Serve: base.Serve},
	}
	ncfg := base.Net
	ncfg.NoRetry = true // keep the demo on the slow shard
	sf, err := netserve.New(specs, ncfg)
	if err != nil {
		return err
	}
	defer sf.Close()
	sts := httptest.NewServer(sf.Handler())
	defer sts.Close()

	for _, tenant := range []string{"hurried", "rushed", "pressed", "urgent", "frantic"} {
		start := time.Now()
		code, body, err := infer(sts.URL, tenant, 1, "25")
		if err != nil {
			return err
		}
		if code == http.StatusGatewayTimeout {
			fmt.Printf("  X-Deadline-Ms: 25 on a 300ms-stalled shard → %d %v after %v (typed, no hang)\n",
				code, body["error"], time.Since(start).Round(time.Millisecond))
			return nil
		}
	}
	return fmt.Errorf("no tenant landed on the slow shard")
}

// infer posts one single-row request and decodes the reply.
func infer(base, tenant string, rows int, deadlineMs string) (int, map[string]any, error) {
	row := make([]float64, campaign.StockInDim)
	for i := range row {
		row[i] = 0.5
	}
	input := make([][]float64, rows)
	for i := range input {
		input[i] = row
	}
	payload, _ := json.Marshal(map[string]any{"tenant": tenant, "input": input})
	req, err := http.NewRequest(http.MethodPost, base+"/v1/infer", bytes.NewReader(payload))
	if err != nil {
		return 0, nil, err
	}
	if deadlineMs != "" {
		req.Header.Set(netserve.DeadlineHeader, deadlineMs)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
