// Quickstart: train a small classifier, derive O-TP concurrent-test
// patterns from it, inject ReRAM-style programming errors, and watch the
// patterns expose the fault while ordinary test images barely react.
//
// Everything here is self-contained and runs in a few seconds:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"reramtest/internal/dataset"
	"reramtest/internal/detect"
	"reramtest/internal/faults"
	"reramtest/internal/models"
	"reramtest/internal/rng"
	"reramtest/internal/testgen"
)

func main() {
	// 1. train a small model on the synthetic digit workload
	train := dataset.SynthDigits(1, dataset.DefaultDigitsConfig(2000))
	test := dataset.SynthDigits(2, dataset.DefaultDigitsConfig(500))
	net := models.MLP(rng.New(7), train.SampleDim(), []int{128, 64}, train.Classes)
	cfg := models.DefaultTrainConfig()
	cfg.Epochs = 4
	cfg.LR = 0.02
	cfg.Log = os.Stdout
	acc := models.Train(net, train, test, cfg)
	fmt.Printf("clean model accuracy: %.1f%%\n\n", 100*acc)

	// 2. generate O-TP patterns: the clean model must be maximally confused
	//    by them, a reference fault model maximally confident
	ref := faults.MakeFaulty(net, faults.LogNormal{Sigma: 0.3}, 99)
	patterns, res := testgen.GenerateOTP(net, ref, train.Classes, testgen.DefaultOTPConfig(), rng.New(11))
	fmt.Printf("generated %d O-TP patterns in %d iterations (converged=%v)\n",
		patterns.M(), res.Iters, res.Converged)

	// 3. capture golden outputs, then check accelerators of varying health
	golden := detect.Capture(net, patterns)
	plainGolden := detect.Capture(net, testgen.SelectPlain(test, patterns.M()))
	for _, sigma := range []float64{0.05, 0.15, 0.3, 0.5} {
		faulty := faults.MakeFaulty(net, faults.LogNormal{Sigma: sigma}, int64(100+sigma*1000))
		otp := golden.Observe(faulty)
		plain := plainGolden.Observe(faulty)
		fmt.Printf("σ=%.2f: O-TP distance=%.4f (flagged=%v) | plain-image distance=%.4f (flagged=%v) | true acc=%.1f%%\n",
			sigma, otp.AllDist, otp.Detect(detect.SDCA3),
			plain.AllDist, plain.Detect(detect.SDCA3),
			100*faulty.Accuracy(test.X, test.Y, 64))
	}
}
