// Repair ladder: the pluggable strategy suite from DESIGN.md §12, run
// against one simulated accelerator that is damaged three different ways.
// Each confirmed fault walks the escalation ladder cheapest-first —
// soft-error scrub (cost 1) → spare-line remap (cost 2) → fault-aware
// retrain (cost 4) — skipping rungs whose applicability predicate rejects
// the diagnosis: pure drift is scrubbed in place for one unit, a stuck-at
// burst skips the scrub entirely, and a rung that fails its concurrent-test
// verification escalates to the next costlier one instead of declaring
// victory open-loop. Every unit of cost is charged against the device's
// lifetime repair budget, whether or not the rung worked. The same ladder,
// driven fleet-wide against a retrain-only control arm, is what `go run
// ./cmd/monitor -lifetime-soak` gates on.
//
//	go run ./examples/repair_ladder
package main

import (
	"fmt"
	"os"

	"reramtest/internal/campaign"
	"reramtest/internal/health"
	"reramtest/internal/monitor"
)

func main() {
	// a plant bundles the trained workload model, the simulated crossbar
	// accelerator and the repair actuators; Ladder exposes the strategy
	// suite, Harden bakes drop-connect stuck-at tolerance in at
	// commissioning (the ladder's zero-cost rung — it runs before the
	// device ever ships)
	pcfg := campaign.DefaultPlantConfig()
	pcfg.Ladder = true
	pcfg.Harden = true
	pcfg.SpareRows = 2
	plant := campaign.NewPlant(7, pcfg)
	fmt.Printf("commissioned: drop-connect hardened, %d spare rows/tile, fidelity %.3f\n",
		pcfg.SpareRows, plant.Fidelity())

	mon, err := monitor.New(plant.Reference(), plant.Patterns(), nil, monitor.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "repair_ladder:", err)
		os.Exit(1)
	}
	hcfg := health.DefaultConfig()
	hcfg.EscalateAfter = 1 // snappy demo: one damaged round confirms
	rt, err := health.New(mon, hcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repair_ladder:", err)
		os.Exit(1)
	}

	budget := 16
	fmt.Printf("lifetime repair budget: %d units (scrub=1 remap=2 retrain=4)\n", budget)

	scenarios := []struct {
		name   string
		damage func()
	}{
		{"resistance drift (900 simulated hours)", func() {
			plant.Accelerator().AdvanceTime(900)
		}},
		{"stuck-at burst (0.4% SA0, 0.2% SA1)", func() {
			plant.Accelerator().InjectStuckAt(0.004, 0.002)
		}},
		{"severe mixed damage (drift + soft errors + stuck-ats)", func() {
			plant.Accelerator().AdvanceTime(1200)
			plant.Accelerator().InjectSoftErrors(0.05)
			plant.Accelerator().InjectStuckAt(0.03, 0.015)
		}},
	}

	for i, sc := range scenarios {
		fmt.Printf("\n== scenario %d: %s ==\n", i+1, sc.name)
		sc.damage()
		d := plant.Diagnose(rt.Confirmed())
		fmt.Printf("diagnosis: %d drifted cells, %d uncompensated stuck cells, %d spare lines free\n",
			d.Drifted, d.Stuck, d.Spares)

		// one supervised round: confirm the damage, walk the ladder
		// cheapest-first, verify each rung with fresh test rounds
		ep := rt.SuperviseBudget(plant.Infer(), plant, budget)
		if !ep.Repaired() {
			fmt.Printf("fidelity %.3f — below the repair threshold, no rung pulled\n", plant.Fidelity())
			continue
		}
		for _, att := range ep.Attempts {
			verdict := "failed verification → escalate"
			if att.Verified {
				verdict = "verified"
			}
			if att.ApplyErr != nil {
				verdict = "apply error: " + att.ApplyErr.Error()
			}
			fmt.Printf("  rung %-7s cost %d  %s\n", att.Strategy, att.Cost, verdict)
		}
		budget -= ep.CostSpent
		fmt.Printf("episode: recovered=%v cost=%d, budget left %d, fidelity %.3f, confirmed %s\n",
			ep.Recovered, ep.CostSpent, budget, plant.Fidelity(), rt.Confirmed())
		if ep.GaveUp {
			fmt.Printf("gave up: %s (retire advised: %v)\n", ep.Recommendation, ep.RetireAdvised)
		}
	}

	if n := plant.UntypedRepairErrors(); n != 0 {
		fmt.Printf("\nWARNING: %d untyped repair errors escaped the strategy contract\n", n)
		os.Exit(1)
	}
	fmt.Printf("\nall repairs drawn from the typed strategy suite; %d budget units unspent\n", budget)
}
