// Self-healing: the complete closed loop the paper motivates — a simulated
// ReRAM accelerator degrades in the field, the concurrent-test monitor
// classifies the damage, the repair planner picks the cheapest adequate
// mechanism, and the repair executes:
//
//	drift          → detected as DEGRADED  → crossbar reprogramming
//	stuck-at burst → detected as IMPAIRED  → stuck-cell diagnosis +
//	                                         fault-aware retraining
//
// After each repair the loop verifies recovery on real data.
//
//	go run ./examples/self_healing
package main

import (
	"fmt"
	"os"

	"reramtest/internal/experiments"
	"reramtest/internal/monitor"
	"reramtest/internal/nn"
	"reramtest/internal/repair"
	"reramtest/internal/reram"
	"reramtest/internal/tensor"
)

func main() {
	env, err := experiments.NewEnv(experiments.DefaultScale(), os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "self_healing:", err)
		os.Exit(1)
	}
	net := env.LeNet
	eval := env.DigitsTest.Head(300)

	cfg := reram.DefaultConfig()
	cfg.Device.ProgramSigma = 0.04
	cfg.Device.DriftRate = 0.0006
	accel := reram.NewAccelerator(net, cfg, 11)
	patterns := env.PatternsDefault("lenet5", "ctp")
	mon := monitor.New(net, patterns, nil, monitor.DefaultConfig())

	infer := func(x *tensor.Tensor) *tensor.Tensor {
		return nn.Softmax(accel.ReadoutNetwork().Forward(x))
	}
	accuracy := func() float64 {
		return accel.ReadoutNetwork().Accuracy(eval.X, eval.Y, 64)
	}

	// the field scenario: slow drift, then an endurance stuck-at burst
	events := []struct {
		name  string
		apply func()
	}{
		{"commissioning", func() {}},
		{"1000h of drift", func() { accel.AdvanceTime(1000) }},
		{"endurance burst: 1.5% SA0 + 0.75% SA1", func() { accel.InjectStuckAt(0.015, 0.0075) }},
	}

	for _, ev := range events {
		ev.apply()
		rep := mon.Check(infer)
		fmt.Printf("\n== %s ==\n", ev.name)
		fmt.Printf("monitor: %s\n", rep)
		fmt.Printf("true accuracy: %.1f%%\n", 100*accuracy())

		action := repair.PlanFor(rep.Status)
		if action == repair.NoAction {
			fmt.Println("plan: healthy — no repair")
			continue
		}
		fmt.Printf("plan: %s\n", action)
		result, newRef := execute(action, accel, net, env, accuracy)
		fmt.Printf("repair: %s\n", result)
		if newRef != nil {
			// a retraining repair changes the reference weights, so golden
			// outputs must be re-captured against the new model — otherwise
			// the monitor keeps comparing the accelerator to a model that no
			// longer exists
			mon = monitor.New(newRef, patterns, nil, monitor.DefaultConfig())
			fmt.Println("monitor re-commissioned against the retrained reference")
		}
		after := mon.Check(infer)
		fmt.Printf("post-repair monitor: status=%s allDist=%.4f\n", after.Status, after.AllDist)
	}
}

// execute runs one repair action against the accelerator. For retraining
// repairs it returns the retrained reference model so the caller can
// re-commission the monitor against it.
func execute(action repair.Action, accel *reram.Accelerator, target *nn.Network,
	env *experiments.Env, accuracy func() float64) (repair.Report, *nn.Network) {
	before := accuracy()
	rep := repair.Report{Action: action, AccBefore: before, AccAfter: -1}
	var newRef *nn.Network
	switch action {
	case repair.Reprogram:
		accel.Reprogram()
	case repair.Retrain, repair.Replace:
		// diagnose which cells are stuck (leaves the arrays reprogrammed, so
		// drift damage is already cleared)
		stuck := repair.DiagnoseStuck(accel, target, 0.3)
		rep.Stuck = stuck.Count()
		// cloud-edge path: fine-tune a copy of the model around the frozen
		// faults, then push the compensated weights back to the device
		faulty := accel.ReadoutNetwork()
		cfg := repair.DefaultRetrainConfig()
		cfg.Epochs = 2
		cfg.Log = os.Stderr
		repair.RetrainAround(faulty, stuck, env.DigitsTrain.Head(2000), nil, cfg)
		accel.ProgramNetwork(faulty) // stuck cells ignore the write — that is why they were frozen
		rep.Detail = "(retrained around frozen faults, weights re-deployed)"
		newRef = faulty
	}
	rep.AccAfter = accuracy()
	return rep, newRef
}
