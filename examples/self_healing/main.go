// Self-healing: the complete closed loop the paper motivates, run through
// the hardened runtime — a simulated ReRAM accelerator degrades in the
// field, health.Runtime debounces the concurrent-test evidence (one noisy
// round never flaps the confirmed status), rejects poisoned readouts (a NaN
// confidence is retried and, failing that, reported as a sensor fault — never
// as Healthy), and drives the supervised detect→repair→verify loop:
//
//	drift          → confirmed DEGRADED → crossbar reprogramming → verified
//	stuck-at burst → confirmed IMPAIRED → stuck-cell diagnosis +
//	                                      fault-aware retraining
//
// Each repair is verified with fresh concurrent-test rounds before the
// runtime declares recovery; a verification failure escalates to the next
// costlier mechanism (reprogram → retrain → replace) instead of declaring
// victory open-loop.
//
//	go run ./examples/self_healing
package main

import (
	"fmt"
	"math"
	"os"

	"reramtest/internal/engine"
	"reramtest/internal/experiments"
	"reramtest/internal/health"
	"reramtest/internal/monitor"
	"reramtest/internal/nn"
	"reramtest/internal/repair"
	"reramtest/internal/reram"
	"reramtest/internal/tensor"
)

// device bundles the accelerator with the repair mechanisms the supervised
// loop may invoke. It implements health.Repairer.
type device struct {
	accel *reram.Accelerator
	ref   *nn.Network
	env   *experiments.Env
	rcfg  reram.Config
	eng   *engine.Engine // batched plan over the cached readout network
}

// engine refreshes the accelerator's cached readout and returns the batched
// inference plan bound to it, rebinding after a module replacement swaps the
// accelerator.
func (d *device) engine() *engine.Engine {
	ro := d.accel.RefreshReadout()
	if d.eng == nil || d.eng.Rebind(ro) != nil {
		d.eng = engine.MustCompile(ro, engine.Options{})
	}
	return d.eng
}

func (d *device) infer(x *tensor.Tensor) *tensor.Tensor {
	return d.engine().Probs(x)
}

func (d *device) accuracy() float64 {
	eval := d.env.DigitsTest.Head(300)
	return d.engine().Accuracy(eval.X, eval.Y, 64)
}

// Apply executes one planned repair action against the hardware.
func (d *device) Apply(action repair.Action) (*nn.Network, error) {
	switch action {
	case repair.Reprogram:
		fmt.Println("  repair: reprogramming all crossbars")
		d.accel.Reprogram()
		return nil, nil
	case repair.Retrain:
		// cloud-edge path: diagnose stuck cells (leaves the arrays
		// reprogrammed), fine-tune around the frozen faults, redeploy, and
		// hand back the new reference for monitor recommissioning
		stuck, err := repair.DiagnoseStuck(d.accel, d.ref, 0.3)
		if err != nil {
			return nil, err
		}
		fmt.Printf("  repair: retraining around %d stuck cells\n", stuck.Count())
		faulty := d.accel.ReadoutNetwork()
		cfg := repair.DefaultRetrainConfig()
		cfg.Epochs = 2
		repair.RetrainAround(faulty, stuck, d.env.DigitsTrain.Head(2000), nil, cfg)
		d.accel.ProgramNetwork(faulty)
		d.ref = faulty
		return faulty, nil
	case repair.Replace:
		fmt.Println("  repair: replacing the module with a fresh part")
		d.accel = reram.NewAccelerator(d.env.LeNet, d.rcfg, 12)
		d.ref = d.env.LeNet
		return d.env.LeNet, nil
	default:
		return nil, nil
	}
}

func main() {
	env, err := experiments.NewEnv(experiments.DefaultScale(), os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "self_healing:", err)
		os.Exit(1)
	}

	rcfg := reram.DefaultConfig()
	rcfg.Device.ProgramSigma = 0.04
	rcfg.Device.DriftRate = 0.0006
	dev := &device{accel: reram.NewAccelerator(env.LeNet, rcfg, 11), ref: env.LeNet, env: env, rcfg: rcfg}
	patterns := env.PatternsDefault("lenet5", "ctp")

	hcfg := health.DefaultConfig()
	hcfg.EscalateAfter = 2 // confirm damage on 2 agreeing rounds
	rt, err := health.New(monitor.MustNew(env.LeNet, patterns, nil, monitor.DefaultConfig()), hcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "self_healing:", err)
		os.Exit(1)
	}

	// the field scenario: a transient readout glitch (absorbed by the
	// debounce), slow drift (reprogrammed), a poisoned NaN readout (rejected,
	// never Healthy), then an endurance stuck-at burst (retrained around)
	events := []struct {
		name   string
		rounds int // monitoring rounds after the event lands
		apply  func() monitor.Infer
	}{
		{"commissioning", 2, func() monitor.Infer { return dev.infer }},
		{"transient readout glitch (1 round)", 1, func() monitor.Infer {
			return func(x *tensor.Tensor) *tensor.Tensor {
				probs := dev.infer(x)
				uniform := 1.0 / float64(probs.Dim(1))
				probs.Apply(func(v float64) float64 { return 0.6*v + 0.4*uniform })
				return probs
			}
		}},
		{"glitch cleared", 1, func() monitor.Infer { return dev.infer }},
		{"250h of drift", 3, func() monitor.Infer {
			dev.accel.AdvanceTime(250)
			return dev.infer
		}},
		{"poisoned sensor: NaN confidences (1 round)", 1, func() monitor.Infer {
			return func(x *tensor.Tensor) *tensor.Tensor {
				probs := dev.infer(x)
				probs.Data()[0] = math.NaN()
				return probs
			}
		}},
		{"sensor recovered", 1, func() monitor.Infer { return dev.infer }},
		{"endurance burst: 1.5% SA0 + 0.75% SA1", 3, func() monitor.Infer {
			dev.accel.InjectStuckAt(0.015, 0.0075)
			return dev.infer
		}},
	}

	for _, ev := range events {
		fmt.Printf("\n== %s ==\n", ev.name)
		infer := ev.apply()
		for i := 0; i < ev.rounds; i++ {
			ep := rt.Supervise(infer, dev)
			fmt.Printf("%s\n", ep.Trigger)
			if ep.Repaired() {
				fmt.Printf("  %s\n", ep)
				fmt.Printf("  true accuracy after repair: %.1f%%\n", 100*dev.accuracy())
			}
		}
	}

	fmt.Printf("\nsummary: %d rounds, %d confirmed status changes, %d readouts rejected\n",
		len(rt.History()), rt.StatusFlips(), func() int { r, _ := rt.RejectedReadouts(); return r }())
}
