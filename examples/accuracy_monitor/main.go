// Accuracy monitoring: reproduces the paper's Fig.-8 story on a live
// degrading model — the confidence distance measured by a handful of O-TP
// patterns tracks the (expensive-to-measure) true accuracy, so the monitor
// can report an accuracy estimate from 10 inferences instead of 10,000.
//
//	go run ./examples/accuracy_monitor
package main

import (
	"fmt"
	"os"

	"reramtest/internal/experiments"
	"reramtest/internal/faults"
	"reramtest/internal/monitor"
)

func main() {
	env, err := experiments.NewEnv(experiments.DefaultScale(), os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "accuracy_monitor:", err)
		os.Exit(1)
	}
	net, test := env.ModelFor("lenet5")

	// calibrate once offline: distance → accuracy over the σ sweep
	fig8 := env.Fig8()
	dist, acc := fig8.CalibrationCurve("otp")
	calib := make([]monitor.CalibPoint, len(dist))
	for i := range dist {
		calib[i] = monitor.CalibPoint{Distance: dist[i], Accuracy: acc[i]}
	}
	mon := monitor.MustNew(net, env.PatternsDefault("lenet5", "otp"), calib, monitor.DefaultConfig())
	fmt.Printf("monitor calibrated with %d points, armed with %d patterns\n\n", len(calib), mon.PatternCount())

	eval := test.Head(500)
	fmt.Printf("%-8s %-12s %-12s %-12s %s\n", "σ", "est. acc", "true acc", "error", "status")
	for _, sigma := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5} {
		faulty := faults.MakeFaulty(net, faults.LogNormal{Sigma: sigma}, int64(7000+sigma*100))
		rep := mon.Check(monitor.NetworkInfer(faulty))
		trueAcc := faulty.Accuracy(eval.X, eval.Y, 64)
		fmt.Printf("%-8.2f %-12s %-12s %-12s %s\n", sigma,
			fmt.Sprintf("%.1f%%", 100*rep.EstAccuracy),
			fmt.Sprintf("%.1f%%", 100*trueAcc),
			fmt.Sprintf("%+.1fpp", 100*(rep.EstAccuracy-trueAcc)),
			rep.Status)
	}
}
