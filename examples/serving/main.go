// Serving frontend: the layer that turns the supervised fleet into a
// concurrent inference service while the paper's concurrent-test monitoring
// keeps running underneath. The demo drives a 3-device fleet through the
// frontend's full failure-handling repertoire, in order:
//
//	healthy serving       → bounded-queue admission, health-weighted routing
//	a slow device         → hedged second attempt on another device wins;
//	                        the caller never waits out the stall
//	a crashing device     → mid-request panic is retried once elsewhere,
//	                        reported into the circuit breaker, and after two
//	                        faults the device is quarantined without waiting
//	                        for a monitoring tick
//	a drifting device     → the monitor confirms Degraded; the device keeps
//	                        serving but every response is flagged
//	a deadline storm      → impossible deadlines come back as typed
//	                        ErrDeadline, never as hangs
//	overload              → a full queue rejects with typed ErrOverloaded
//	                        instead of building invisible latency
//	drain                 → Close answers everything already admitted; the
//	                        final accounting shows zero silent drops
//
//	go run ./examples/serving
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"reramtest/internal/engine"
	"reramtest/internal/fleet"
	"reramtest/internal/health"
	"reramtest/internal/models"
	"reramtest/internal/monitor"
	"reramtest/internal/nn"
	"reramtest/internal/rng"
	"reramtest/internal/serve"
	"reramtest/internal/tensor"
	"reramtest/internal/testgen"
)

// device is an engine-backed accelerator with demo-controllable failure
// modes. Its Infer runs through one compiled batch-inference plan; the serve
// Station serialises access, so the single-goroutine engine is safe here.
type device struct {
	id   string
	net  *nn.Network
	pats *testgen.PatternSet
	eng  *engine.Engine

	mu    sync.Mutex
	delay time.Duration // injected readout stall
	crash bool          // injected mid-request panic
	shift float64       // injected confidence drift
}

func (d *device) ID() string                    { return d.id }
func (d *device) Reference() *nn.Network        { return d.net }
func (d *device) Patterns() *testgen.PatternSet { return d.pats }
func (d *device) Repairer() health.Repairer     { return nil }

func (d *device) set(f func(*device)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f(d)
}

func (d *device) Infer() monitor.Infer {
	return func(x *tensor.Tensor) *tensor.Tensor {
		d.mu.Lock()
		delay, crash, shift := d.delay, d.crash, d.shift
		d.mu.Unlock()
		if delay > 0 {
			time.Sleep(delay)
		}
		if crash {
			panic("device: injected mid-request crash")
		}
		probs := d.eng.Probs(x)
		if shift != 0 {
			probs.Apply(func(v float64) float64 { return v + shift })
		}
		return probs
	}
}

func main() {
	r := rng.New(7)
	pats := &testgen.PatternSet{
		Name: "demo", Method: "plain",
		X:      tensor.RandUniform(r.Split(), 0, 1, 8, 16),
		Labels: make([]int, 8),
	}
	ref := models.MLP(rng.New(1), 16, []int{24, 16}, 6)
	devs := make([]*device, 3)
	wrapped := make([]fleet.Device, 3)
	for i := range devs {
		net := ref.Clone()
		devs[i] = &device{id: fmt.Sprintf("accel-%02d", i), net: net, pats: pats,
			eng: engine.MustCompile(net, engine.Options{Workers: 1})}
		wrapped[i] = devs[i]
	}

	fcfg := fleet.DefaultConfig()
	fcfg.Health.Sleep = func(time.Duration) {} // demo time, no real backoff waits
	fcfg.BreakerOpenAfter = 2
	scfg := serve.Config{Workers: 4, QueueBulk: 8, QueueMonitor: 4,
		HedgeAfter: 5 * time.Millisecond, DefaultDeadline: time.Second}
	srv, err := serve.New(wrapped, fcfg, scfg, nil)
	fatal(err)
	fmt.Printf("serving frontend up: %d devices, %d workers, queues bulk=%d monitor=%d, hedge after %v\n\n",
		len(devs), scfg.Workers, scfg.QueueBulk, scfg.QueueMonitor, scfg.HedgeAfter)

	batch := func(tag int) *tensor.Tensor {
		return tensor.RandUniform(rng.New(int64(100+tag)), 0, 1, 2, 16)
	}

	fmt.Println("--- act 1: healthy fleet, a burst of 12 requests")
	placed := map[string]int{}
	for q := 0; q < 12; q++ {
		resp, err := srv.Do(context.Background(), batch(q), serve.Bulk)
		fatal(err)
		placed[resp.Device]++
	}
	fmt.Printf("  placement: %v (healthy devices weighted equally)\n\n", placed)

	fmt.Println("--- act 2: accel-00's readout stalls at 40ms; hedging routes around it")
	devs[0].set(func(d *device) { d.delay = 40 * time.Millisecond })
	for q := 0; q < 4; q++ {
		start := time.Now()
		resp, err := srv.Do(context.Background(), batch(q), serve.Bulk)
		fatal(err)
		fmt.Printf("  served by %s in %7v  hedged=%-5v\n", resp.Device, time.Since(start).Round(time.Millisecond), resp.Hedged)
	}
	devs[0].set(func(d *device) { d.delay = 0 })
	fmt.Println()

	fmt.Println("--- act 3: accel-01 starts crashing mid-request")
	devs[1].set(func(d *device) { d.crash = true })
	for q := 0; q < 6; q++ {
		resp, err := srv.Do(context.Background(), batch(q), serve.Bulk)
		fatal(err)
		if resp.Retried {
			fmt.Printf("  request %d: primary crashed, retried on %s — caller saw nothing\n", q, resp.Device)
		}
	}
	fmt.Printf("  quarantined after serving faults (no tick needed): %v\n\n", srv.Quarantined())
	devs[1].set(func(d *device) { d.crash = false })

	fmt.Println("--- act 4: accel-02 drifts; the monitor confirms Degraded, serving continues flagged")
	devs[2].set(func(d *device) { d.shift = 0.04 })
	for i := 0; i < 2; i++ { // EscalateAfter=2 rounds of agreeing evidence
		_, err := srv.Tick()
		fatal(err)
	}
	for q := 0; q < 3; q++ { // weighted schedule: Healthy×2, Degraded×1
		resp, err := srv.Do(context.Background(), batch(q), serve.Bulk)
		fatal(err)
		fmt.Printf("  served by %s  status=%-8s degraded=%v\n", resp.Device, resp.Status, resp.Degraded)
	}
	fmt.Println()

	fmt.Println("--- act 5: a deadline storm (500µs budgets against 10ms devices)")
	devs[0].set(func(d *device) { d.delay = 10 * time.Millisecond })
	devs[2].set(func(d *device) { d.delay = 10 * time.Millisecond })
	deadline := 0
	for q := 0; q < 6; q++ {
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Microsecond)
		if _, err := srv.Do(ctx, batch(q), serve.Bulk); errors.Is(err, serve.ErrDeadline) {
			deadline++
		}
		cancel()
	}
	fmt.Printf("  %d/6 returned typed ErrDeadline; none hung\n\n", deadline)
	devs[0].set(func(d *device) { d.delay = 5 * time.Millisecond })
	devs[2].set(func(d *device) { d.delay = 5 * time.Millisecond })

	fmt.Println("--- act 6: overload — 40 concurrent requests against an 8-deep queue of 5ms devices")
	var wg sync.WaitGroup
	var mu sync.Mutex
	overloaded, served := 0, 0
	for q := 0; q < 40; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			_, err := srv.Do(context.Background(), batch(q), serve.Bulk)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				served++
			case errors.Is(err, serve.ErrOverloaded):
				overloaded++
			}
		}(q)
	}
	wg.Wait()
	fmt.Printf("  served=%d rejected-typed=%d (bounded queue, no invisible latency)\n\n", served, overloaded)

	fmt.Println("--- act 7: drain")
	fatal(srv.Close())
	if _, err := srv.Do(context.Background(), batch(0), serve.Bulk); errors.Is(err, serve.ErrClosed) {
		fmt.Println("  post-close admission rejected with typed ErrClosed")
	}
	st := srv.Stats()
	fmt.Printf("  final accounting: admitted=%d terminal=%d (served=%d degraded=%d hedges=%d retries=%d deadline=%d overload=%d)\n",
		st.Admitted, st.Terminal(), st.Served, st.ServedDegraded, st.Hedges, st.Retries, st.Deadlines, st.Overloads)
	if st.Admitted == st.Terminal() {
		fmt.Println("  zero silent drops: every admitted request got a response or a typed error")
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "serving demo:", err)
		os.Exit(1)
	}
}
