// Command served runs the network-facing sharded serving tier: N shards,
// each a health-monitored fleet of simulated engine-backed accelerators
// behind the concurrent serve frontend, unified under one HTTP listener
// with consistent-hash tenant placement, per-tenant admission quotas,
// header-propagated deadlines and bounded cross-shard retries.
//
//	served -addr :8080 -shards 2 -devices 3 -quota-rate 512 -quota-burst 1024
//
// The wire protocol is documented in internal/netserve/http.go and
// DESIGN.md §13:
//
//	POST /v1/infer    {"tenant":"t","priority":"bulk","input":[[...16 floats]]}
//	GET  /v1/healthz  per-shard serving/draining snapshot (503 when no shard live)
//	GET  /v1/stats    lifetime counters
//
// A background goroutine runs fleet monitoring ticks; SIGINT/SIGTERM drains
// every shard gracefully (in-flight requests finish, new ones get typed
// 503s) before the listener stops.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"reramtest/internal/campaign"
	"reramtest/internal/netserve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 2, "number of serving shards")
	devices := flag.Int("devices", 3, "accelerators per shard")
	seed := flag.Int64("seed", 1, "device-initialisation seed")
	policy := flag.String("policy", "hash", "dispatch policy: hash | least-loaded")
	quotaRate := flag.Float64("quota-rate", 0, "per-tenant admission rate, batch rows/sec (0 = unlimited)")
	quotaBurst := flag.Float64("quota-burst", 0, "per-tenant burst, batch rows (0 = rate)")
	retryMax := flag.Int("retry-max", 1, "max cross-shard retries per request")
	tickEvery := flag.Duration("tick-every", 5*time.Second, "fleet monitoring tick period (0 disables)")
	flag.Parse()

	base := campaign.DefaultNetSoakConfig() // the soak's tuned fleet/serve/net knobs
	ncfg := base.Net
	ncfg.Quota = netserve.QuotaConfig{Rate: *quotaRate, Burst: *quotaBurst}
	ncfg.RetryMax = *retryMax
	switch *policy {
	case "hash":
		ncfg.Policy = netserve.HashTenant
	case "least-loaded":
		ncfg.Policy = netserve.LeastLoaded
	default:
		fmt.Fprintf(os.Stderr, "served: unknown -policy %q (want hash or least-loaded)\n", *policy)
		os.Exit(2)
	}

	specs := make([]netserve.ShardSpec, *shards)
	for i := range specs {
		specs[i] = netserve.ShardSpec{
			Name:    fmt.Sprintf("shard-%d", i),
			Devices: campaign.EngineDevices(*seed+int64(i), *devices, fmt.Sprintf("s%d", i)),
			Fleet:   base.Fleet,
			Serve:   base.Serve,
		}
	}
	f, err := netserve.New(specs, ncfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "served:", err)
		os.Exit(1)
	}

	stopTicks := make(chan struct{})
	if *tickEvery > 0 {
		go func() {
			t := time.NewTicker(*tickEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					f.Tick()
				case <-stopTicks:
					return
				}
			}
		}()
	}

	hs := &http.Server{Addr: *addr, Handler: f.Handler()}
	done := make(chan struct{})
	sig := drainSignals()
	go func() {
		defer close(done)
		drainOnSignal(sig, f, hs, stopTicks, os.Stdout, os.Stderr)
	}()

	fmt.Printf("served: %d shard(s) × %d device(s), policy %s, input width %d, listening on %s\n",
		*shards, *devices, ncfg.Policy, f.InDim(), *addr)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "served:", err)
		os.Exit(1)
	}
	<-done
}
