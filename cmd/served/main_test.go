package main

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"testing"
	"time"

	"reramtest/internal/campaign"
	"reramtest/internal/netserve"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// TestSIGTERMDrainsGracefully delivers a real SIGTERM to the process and
// checks the full drain sequence: the handler fires, the tier closes (new
// requests get the typed closed error), and the listener shuts down with
// ErrServerClosed — exactly the SIGINT behaviour.
func TestSIGTERMDrainsGracefully(t *testing.T) {
	base := campaign.DefaultNetSoakConfig()
	f, err := netserve.New([]netserve.ShardSpec{{
		Name:    "shard-0",
		Devices: campaign.EngineDevices(1, 2, "s0"),
		Fleet:   base.Fleet,
		Serve:   base.Serve,
	}}, base.Net)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: f.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	// prove the tier serves before the signal
	x := tensor.RandUniform(rng.New(3), 0, 1, 1, f.InDim())
	if _, err := f.Do(context.Background(), netserve.Request{Tenant: "t", X: x}); err != nil {
		t.Fatalf("pre-drain request failed: %v", err)
	}

	sig := drainSignals()
	defer signal.Stop(sig)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		if s := drainOnSignal(sig, f, hs, make(chan struct{}), io.Discard, io.Discard); s != syscall.SIGTERM {
			t.Errorf("drained on %v, want SIGTERM", s)
		}
	}()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-drained:
	case <-time.After(15 * time.Second):
		t.Fatal("SIGTERM drain never completed")
	}

	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("listener exited with %v, want ErrServerClosed", err)
	}
	if _, err := f.Do(context.Background(), netserve.Request{Tenant: "t", X: x}); !errors.Is(err, netserve.ErrFrontendClosed) {
		t.Fatalf("post-drain request returned %v, want ErrFrontendClosed", err)
	}
	// nothing admitted was dropped on the floor by the drain
	if st := f.Stats(); st.Admitted != st.Terminal() {
		t.Fatalf("drain lost requests: admitted %d, terminal %d", st.Admitted, st.Terminal())
	}
}

// TestDrainHandlesSIGINTToo pins that both registered signals run the same
// sequence (the channel is shared, so one handler covers both).
func TestDrainHandlesSIGINTToo(t *testing.T) {
	base := campaign.DefaultNetSoakConfig()
	f, err := netserve.New([]netserve.ShardSpec{{
		Name:    "shard-0",
		Devices: campaign.EngineDevices(2, 2, "s0"),
		Fleet:   base.Fleet,
		Serve:   base.Serve,
	}}, base.Net)
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Addr: "127.0.0.1:0", Handler: f.Handler()}
	sig := make(chan os.Signal, 1)
	sig <- os.Interrupt
	if s := drainOnSignal(sig, f, hs, make(chan struct{}), io.Discard, io.Discard); s != os.Interrupt {
		t.Fatalf("drained on %v, want SIGINT", s)
	}
	if _, err := f.Do(context.Background(), netserve.Request{Tenant: "t", X: tensor.New(1, f.InDim())}); !errors.Is(err, netserve.ErrFrontendClosed) {
		t.Fatalf("post-drain request returned %v, want ErrFrontendClosed", err)
	}
}
