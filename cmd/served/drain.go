// Graceful drain: SIGINT and SIGTERM are equivalent — both stop the
// monitoring ticker, drain every shard (in-flight requests finish, new ones
// get typed 503s) and then shut the listener down.
package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"reramtest/internal/netserve"
)

// drainSignals registers the graceful-drain signal set.
func drainSignals() chan os.Signal {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	return sig
}

// drainOnSignal blocks until a drain signal arrives, then runs the shutdown
// sequence — ticker, shards, listener, in that order — and returns the
// signal handled.
func drainOnSignal(sig <-chan os.Signal, f *netserve.Frontend, hs *http.Server, stopTicks chan struct{}, out, errOut io.Writer) os.Signal {
	s := <-sig
	fmt.Fprintf(out, "served: %v — draining %d shard(s)\n", s, len(f.ShardNames()))
	close(stopTicks)
	if cerr := f.Close(); cerr != nil {
		fmt.Fprintln(errOut, "served: drain:", cerr)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hs.Shutdown(ctx)
	st := f.Stats()
	fmt.Fprintf(out, "served: drained — received %d, completed %d (degraded %d), admitted==terminal: %v\n",
		st.Received, st.Completed, st.CompletedDegraded, st.Admitted == st.Terminal())
	return s
}
