// Command benchsmoke is the CI performance gate for the batch-first
// inference engine. It rebuilds the default monitoring workload (the fleet
// plant's MLP shape with its 16-pattern concurrent-test batch), verifies the
// batched readout is bit-identical to the serial per-sample path, then
// measures both and compares against the committed baseline
// (cmd/benchsmoke/testdata/bench_baseline.json).
//
// The baseline is expressed as machine-independent ratios — minimum
// batched-over-serial speedup and maximum steady-state allocations per
// readout — so the gate is stable across host CPUs and core counts (the
// speedup on a single-core runner comes from allocation avoidance and
// workspace reuse, not parallelism). Exit status 0 means the gate holds;
// 1 means a regression (or a bit-identity violation, which fails first and
// loudest).
//
//	go run ./cmd/benchsmoke [-baseline path]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"reramtest/internal/engine"
	"reramtest/internal/models"
	"reramtest/internal/nn"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

// Baseline is the committed performance contract.
type Baseline struct {
	// MinSpeedup is the minimum serial/batched wall-time ratio for one full
	// monitor readout (all patterns through the model plus softmax).
	MinSpeedup float64 `json:"min_speedup"`
	// MaxAllocsPerOp caps steady-state heap allocations per batched readout.
	MaxAllocsPerOp float64 `json:"max_allocs_per_op"`
}

func main() {
	baselinePath := flag.String("baseline", "cmd/benchsmoke/testdata/bench_baseline.json", "baseline ratios to gate against")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke:", err)
		os.Exit(1)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke: parse baseline:", err)
		os.Exit(1)
	}

	// the default plant workload: untrained weights cost the same to run as
	// trained ones, so the gate needs no weight cache
	const patterns, in, classes = 16, 16, 6
	net := models.MLP(rng.New(7), in, []int{24, 16}, classes)
	x := tensor.RandUniform(rng.New(8), 0, 1, patterns, in)
	eng := engine.MustCompile(net, engine.Options{})

	serial := func(dst *tensor.Tensor) {
		dd := dst.Data()
		for s := 0; s < patterns; s++ {
			row := tensor.FromSlice(x.Data()[s*in:(s+1)*in], 1, in)
			probs := nn.Softmax(net.Forward(row))
			copy(dd[s*classes:(s+1)*classes], probs.Data())
		}
	}

	// hard gate first: the batched readout must be bit-identical to the
	// serial one — a fast engine that moves a single confidence bit would
	// silently shift every monitor distance in the fleet
	want := tensor.New(patterns, classes)
	serial(want)
	if !eng.Probs(x).Equal(want) {
		fmt.Fprintln(os.Stderr, "benchsmoke: FAIL batched readout is not bit-identical to the serial path")
		os.Exit(1)
	}

	scratch := tensor.New(patterns, classes)
	serialRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			serial(scratch)
		}
	})
	eng.Probs(x) // warm the workspaces so the timed loop is steady state
	batchedRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng.Probs(x)
		}
	})
	allocs := testing.AllocsPerRun(50, func() { eng.Probs(x) })

	speedup := float64(serialRes.NsPerOp()) / float64(batchedRes.NsPerOp())
	fmt.Printf("benchsmoke: serial %d ns/op, batched %d ns/op, speedup %.2fx (min %.2fx), allocs/op %.0f (max %.0f)\n",
		serialRes.NsPerOp(), batchedRes.NsPerOp(), speedup, base.MinSpeedup, allocs, base.MaxAllocsPerOp)

	failed := false
	if speedup < base.MinSpeedup {
		fmt.Fprintf(os.Stderr, "benchsmoke: FAIL speedup %.2fx below baseline %.2fx\n", speedup, base.MinSpeedup)
		failed = true
	}
	if allocs > base.MaxAllocsPerOp {
		fmt.Fprintf(os.Stderr, "benchsmoke: FAIL %.0f allocs/op above baseline %.0f\n", allocs, base.MaxAllocsPerOp)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchsmoke: PASS")
}
