// Command benchsmoke is the CI performance gate for the batch-first
// inference engine, the batch-first training engine and the drop-connect
// hardening step. It rebuilds the default monitoring workload (the fleet
// plant's MLP shape with its 16-pattern concurrent-test batch), verifies the
// batched paths are bit-identical to the legacy serial/per-layer paths (and
// hardening bit-identical between serial and pooled engines), then measures
// everything and compares against the committed baseline
// (cmd/benchsmoke/testdata/bench_baseline.json).
//
// The baseline is expressed as machine-independent ratios — minimum
// batched-over-serial speedup and maximum steady-state allocations per
// operation — so the gate is stable across host CPUs and core counts (the
// speedup on a single-core runner comes from allocation avoidance and
// workspace reuse, not parallelism). Exit status 0 means the gate holds;
// 1 means a regression (or a bit-identity violation, which fails first and
// loudest).
//
// With -json DIR the measured numbers are also written to
// DIR/BENCH_infer.json, DIR/BENCH_train.json and DIR/BENCH_harden.json, the
// machine-readable perf-trajectory artifacts documented in DESIGN.md §11.
//
//	go run ./cmd/benchsmoke [-baseline path] [-json dir]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"reramtest/internal/engine"
	"reramtest/internal/models"
	"reramtest/internal/nn"
	"reramtest/internal/opt"
	"reramtest/internal/reram"
	"reramtest/internal/rng"
	"reramtest/internal/tengine"
	"reramtest/internal/tensor"
)

// Baseline is the committed performance contract.
type Baseline struct {
	// MinSpeedup is the minimum serial/batched wall-time ratio for one full
	// monitor readout (all patterns through the model plus softmax).
	MinSpeedup float64 `json:"min_speedup"`
	// MaxAllocsPerOp caps steady-state heap allocations per batched readout.
	MaxAllocsPerOp float64 `json:"max_allocs_per_op"`
	// TrainMinSpeedup is the minimum legacy/engine wall-time ratio for one
	// full training step (forward + backward + optimizer update).
	TrainMinSpeedup float64 `json:"train_min_speedup"`
	// TrainMaxAllocsPerOp caps steady-state heap allocations per engine
	// training step (ForwardBackward + fused StepAndZero).
	TrainMaxAllocsPerOp float64 `json:"train_max_allocs_per_op"`
	// HardenMinSpeedup is the minimum plain-step-over-masked-step wall-time
	// ratio for drop-connect hardening: the mask prepass and restore are O(n)
	// passes over the weights, so a masked step must stay within a bounded
	// factor of the unmasked one (0.25 means masking may cost at most 4×).
	HardenMinSpeedup float64 `json:"harden_min_speedup"`
	// HardenMaxAllocsPerOp caps steady-state heap allocations per masked
	// drop-connect training step (DropConnect.Step + fused StepAndZero).
	HardenMaxAllocsPerOp float64 `json:"harden_max_allocs_per_op"`
	// CostMinRatio is the minimum unmetered-over-metered wall-time ratio for
	// one analog inference pass: hardware cost accounting rides the tile hot
	// path, so a metered pass must stay within a bounded factor of an
	// unmetered one (0.70 means metering may cost at most ~1.43×).
	CostMinRatio float64 `json:"cost_min_ratio"`
	// CostMaxAllocsPerOp caps steady-state heap allocations of the counting
	// hot path itself (Counter.ChargeClass + Snapshot). The contract is zero.
	CostMaxAllocsPerOp float64 `json:"cost_max_allocs_per_op"`
	// QuantF32MinSpeedup is the minimum f64-over-f32 wall-time ratio for one
	// monitor readout on the float32 tier: half-width arithmetic must actually
	// buy throughput, not just lose bits.
	QuantF32MinSpeedup float64 `json:"quant_f32_min_speedup"`
	// QuantI8MinSpeedup is the minimum f64-over-int8 wall-time ratio. The
	// scalar int8 kernels model conversion-energy savings, not SIMD throughput,
	// so the floor is honest about near-parity: it guards against the tier
	// becoming pathologically slower, not against it failing to be fast.
	QuantI8MinSpeedup float64 `json:"quant_i8_min_speedup"`
	// QuantF32ULPBound is the f32 accuracy envelope: per output row,
	// max|f32 − f64| must stay within bound·2⁻²⁴·max|row| (a scaled-ULP
	// bound — robust to cancellation, where a raw ULP distance explodes).
	QuantF32ULPBound float64 `json:"quant_f32_ulp_bound"`
	// QuantMaxAllocsPerOp caps steady-state heap allocations per fast-tier
	// readout. The converted-weight caches make the contract zero.
	QuantMaxAllocsPerOp float64 `json:"quant_max_allocs_per_op"`
}

// Report is one emitted perf-trajectory record (BENCH_infer.json /
// BENCH_train.json).
type Report struct {
	Workload      string  `json:"workload"`
	LegacyNsPerOp int64   `json:"legacy_ns_per_op"`
	EngineNsPerOp int64   `json:"engine_ns_per_op"`
	Speedup       float64 `json:"speedup"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	MinSpeedup    float64 `json:"min_speedup"`
	MaxAllocsOp   float64 `json:"max_allocs_per_op"`
}

func writeReport(dir, name string, r Report) {
	if dir == "" {
		return
	}
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke: marshal report:", err)
		os.Exit(1)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke: write report:", err)
		os.Exit(1)
	}
}

func main() {
	baselinePath := flag.String("baseline", "cmd/benchsmoke/testdata/bench_baseline.json", "baseline ratios to gate against")
	jsonDir := flag.String("json", "", "directory to write BENCH_infer.json / BENCH_train.json perf-trajectory artifacts (empty = skip)")
	precision := flag.String("precision", "all", "fast tiers the quant gate exercises: all, f32 or i8 (the f64 reference arm always runs)")
	flag.Parse()
	if *precision != "all" && *precision != "f32" && *precision != "i8" {
		fmt.Fprintf(os.Stderr, "benchsmoke: -precision %q must be all, f32 or i8\n", *precision)
		os.Exit(1)
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke:", err)
		os.Exit(1)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke: parse baseline:", err)
		os.Exit(1)
	}

	failed := false
	if !inferGate(base, *jsonDir) {
		failed = true
	}
	if !trainGate(base, *jsonDir) {
		failed = true
	}
	if !hardenGate(base, *jsonDir) {
		failed = true
	}
	if !costGate(base, *jsonDir) {
		failed = true
	}
	if !quantGate(base, *jsonDir, *precision) {
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchsmoke: PASS")
}

// inferGate measures the batched monitor readout against the per-sample
// serial path.
func inferGate(base Baseline, jsonDir string) bool {
	// the default plant workload: untrained weights cost the same to run as
	// trained ones, so the gate needs no weight cache
	const patterns, in, classes = 16, 16, 6
	net := models.MLP(rng.New(7), in, []int{24, 16}, classes)
	x := tensor.RandUniform(rng.New(8), 0, 1, patterns, in)
	eng := engine.MustCompile(net, engine.Options{})

	serial := func(dst *tensor.Tensor) {
		dd := dst.Data()
		for s := 0; s < patterns; s++ {
			row := tensor.FromSlice(x.Data()[s*in:(s+1)*in], 1, in)
			probs := nn.Softmax(net.Forward(row))
			copy(dd[s*classes:(s+1)*classes], probs.Data())
		}
	}

	// hard gate first: the batched readout must be bit-identical to the
	// serial one — a fast engine that moves a single confidence bit would
	// silently shift every monitor distance in the fleet
	want := tensor.New(patterns, classes)
	serial(want)
	if !eng.Probs(x).Equal(want) {
		fmt.Fprintln(os.Stderr, "benchsmoke: FAIL batched readout is not bit-identical to the serial path")
		return false
	}

	scratch := tensor.New(patterns, classes)
	serialRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			serial(scratch)
		}
	})
	eng.Probs(x) // warm the workspaces so the timed loop is steady state
	batchedRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng.Probs(x)
		}
	})
	allocs := testing.AllocsPerRun(50, func() { eng.Probs(x) })

	speedup := float64(serialRes.NsPerOp()) / float64(batchedRes.NsPerOp())
	fmt.Printf("benchsmoke: infer serial %d ns/op, batched %d ns/op, speedup %.2fx (min %.2fx), allocs/op %.0f (max %.0f)\n",
		serialRes.NsPerOp(), batchedRes.NsPerOp(), speedup, base.MinSpeedup, allocs, base.MaxAllocsPerOp)
	writeReport(jsonDir, "BENCH_infer.json", Report{
		Workload:      fmt.Sprintf("MLP 16-[24 16]-6, %d-pattern monitor readout", patterns),
		LegacyNsPerOp: serialRes.NsPerOp(), EngineNsPerOp: batchedRes.NsPerOp(),
		Speedup: speedup, AllocsPerOp: allocs,
		MinSpeedup: base.MinSpeedup, MaxAllocsOp: base.MaxAllocsPerOp,
	})

	ok := true
	if speedup < base.MinSpeedup {
		fmt.Fprintf(os.Stderr, "benchsmoke: FAIL infer speedup %.2fx below baseline %.2fx\n", speedup, base.MinSpeedup)
		ok = false
	}
	if allocs > base.MaxAllocsPerOp {
		fmt.Fprintf(os.Stderr, "benchsmoke: FAIL infer %.0f allocs/op above baseline %.0f\n", allocs, base.MaxAllocsPerOp)
		ok = false
	}
	return ok
}

// trainGate measures one full training step (forward + backward + momentum
// SGD update) through the training engine against the legacy per-layer loop,
// after first demanding that a multi-step training run lands on bit-identical
// weights on all three arms: legacy, serial engine, pooled engine.
func trainGate(base Baseline, jsonDir string) bool {
	const batch, in, classes, steps = 16, 16, 6, 25
	buildNet := func() *nn.Network {
		n := models.MLP(rng.New(7), in, []int{24, 16}, classes)
		n.SetTraining(true)
		return n
	}
	x := tensor.RandUniform(rng.New(8), 0, 1, batch, in)
	labels := make([]int, batch)
	for j := range labels {
		labels[j] = j % classes
	}

	legacyStep := func(net *nn.Network, sgd *opt.SGD) {
		logits := net.Forward(x)
		_, grad := nn.CrossEntropy(logits, labels)
		net.ZeroGrad()
		net.Backward(grad)
		sgd.Step()
	}

	// hard gate first: K momentum-SGD steps must produce bit-identical final
	// weights via the legacy loop, the serial engine and the pooled engine —
	// the determinism contract of the fixed-order shard reduction. Only after
	// equality holds is any ratio worth measuring.
	pool := tensor.NewPool(4)
	defer pool.Close()
	legacyNet, serialNet, pooledNet := buildNet(), buildNet(), buildNet()
	lOpt := opt.NewSGD(legacyNet.Params(), 0.05, 0.9, 1e-4)
	sOpt := opt.NewSGD(serialNet.Params(), 0.05, 0.9, 1e-4)
	pOpt := opt.NewSGD(pooledNet.Params(), 0.05, 0.9, 1e-4)
	se := tengine.MustCompile(serialNet, tengine.Options{Workers: 1, MaxBatch: batch})
	pe := tengine.MustCompile(pooledNet, tengine.Options{Pool: pool, MaxBatch: batch})
	for i := 0; i < steps; i++ {
		legacyStep(legacyNet, lOpt)
		se.ForwardBackward(x, labels)
		sOpt.StepAndZero()
		pe.ForwardBackward(x, labels)
		pOpt.StepAndZero()
	}
	lp, sp, pp := legacyNet.Params(), serialNet.Params(), pooledNet.Params()
	for i := range lp {
		if !sp[i].Value.Equal(lp[i].Value) || !pp[i].Value.Equal(lp[i].Value) {
			fmt.Fprintf(os.Stderr, "benchsmoke: FAIL trained weights of %s are not bit-identical across legacy/serial/pooled arms\n", lp[i].Name)
			return false
		}
	}

	// timing arms use the repo's default training workload — the digits-sized
	// MLP models.DefaultTrainConfig trains, batch 32 — so the committed ratio
	// tracks the shape users actually pay for
	const tBatch, tIn, tClasses = 32, 784, 10
	buildTimingNet := func() *nn.Network {
		n := models.MLP(rng.New(13), tIn, []int{64, 32}, tClasses)
		n.SetTraining(true)
		return n
	}
	tx := tensor.RandUniform(rng.New(9), 0, 1, tBatch, tIn)
	tLabels := make([]int, tBatch)
	for j := range tLabels {
		tLabels[j] = j % tClasses
	}
	benchLegacy, benchEngineNet := buildTimingNet(), buildTimingNet()
	blOpt := opt.NewSGD(benchLegacy.Params(), 0.05, 0.9, 1e-4)
	beOpt := opt.NewSGD(benchEngineNet.Params(), 0.05, 0.9, 1e-4)
	be := tengine.MustCompile(benchEngineNet, tengine.Options{Workers: 1, MaxBatch: tBatch})
	legacyRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			logits := benchLegacy.Forward(tx)
			_, grad := nn.CrossEntropy(logits, tLabels)
			benchLegacy.ZeroGrad()
			benchLegacy.Backward(grad)
			blOpt.Step()
		}
	})
	be.ForwardBackward(tx, tLabels) // warm the workspaces
	beOpt.StepAndZero()
	engineRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			be.ForwardBackward(tx, tLabels)
			beOpt.StepAndZero()
		}
	})
	allocs := testing.AllocsPerRun(50, func() {
		be.ForwardBackward(tx, tLabels)
		beOpt.StepAndZero()
	})

	speedup := float64(legacyRes.NsPerOp()) / float64(engineRes.NsPerOp())
	fmt.Printf("benchsmoke: train legacy %d ns/op, engine %d ns/op, speedup %.2fx (min %.2fx), allocs/op %.0f (max %.0f)\n",
		legacyRes.NsPerOp(), engineRes.NsPerOp(), speedup, base.TrainMinSpeedup, allocs, base.TrainMaxAllocsPerOp)
	writeReport(jsonDir, "BENCH_train.json", Report{
		Workload:      fmt.Sprintf("MLP 784-[64 32]-10, batch-%d momentum-SGD training step", tBatch),
		LegacyNsPerOp: legacyRes.NsPerOp(), EngineNsPerOp: engineRes.NsPerOp(),
		Speedup: speedup, AllocsPerOp: allocs,
		MinSpeedup: base.TrainMinSpeedup, MaxAllocsOp: base.TrainMaxAllocsPerOp,
	})

	ok := true
	if speedup < base.TrainMinSpeedup {
		fmt.Fprintf(os.Stderr, "benchsmoke: FAIL train speedup %.2fx below baseline %.2fx\n", speedup, base.TrainMinSpeedup)
		ok = false
	}
	if allocs > base.TrainMaxAllocsPerOp {
		fmt.Fprintf(os.Stderr, "benchsmoke: FAIL train %.0f allocs/op above baseline %.0f\n", allocs, base.TrainMaxAllocsPerOp)
		ok = false
	}
	return ok
}

// hardenGate measures the drop-connect hardening step — the repair ladder's
// commissioning-time rung — against the unmasked training step, after first
// demanding that hardening is bit-identical between a serial and a pooled
// engine (masks are drawn serially outside the kernels, so worker count must
// not move a single weight bit) and that the masked step allocates nothing
// in steady state.
func hardenGate(base Baseline, jsonDir string) bool {
	const batch, in, classes, steps = 16, 16, 6, 25
	x := tensor.RandUniform(rng.New(8), 0, 1, batch, in)
	labels := make([]int, batch)
	for j := range labels {
		labels[j] = j % classes
	}

	// hard gate first: K hardened momentum-SGD steps must land on
	// bit-identical weights on the serial and pooled arms
	pool := tensor.NewPool(4)
	defer pool.Close()
	runDC := func(opts tengine.Options) *nn.Network {
		net := models.MLP(rng.New(7), in, []int{24, 16}, classes)
		net.SetTraining(true)
		sgd := opt.NewSGD(net.Params(), 0.05, 0.9, 0)
		dc := tengine.NewDropConnect(tengine.MustCompile(net, opts), 0.1, rng.New(17))
		for i := 0; i < steps; i++ {
			dc.Step(x, labels)
			sgd.StepAndZero()
		}
		return net
	}
	serialNet := runDC(tengine.Options{Workers: 1, MaxBatch: batch})
	pooledNet := runDC(tengine.Options{Pool: pool, MaxBatch: batch})
	sp, pp := serialNet.Params(), pooledNet.Params()
	for i := range sp {
		if !pp[i].Value.Equal(sp[i].Value) {
			fmt.Fprintf(os.Stderr, "benchsmoke: FAIL hardened weights of %s are not bit-identical across serial/pooled arms\n", sp[i].Name)
			return false
		}
	}

	// timing arms on the default training workload, masked vs unmasked step
	const tBatch, tIn, tClasses = 32, 784, 10
	buildTimingNet := func() *nn.Network {
		n := models.MLP(rng.New(13), tIn, []int{64, 32}, tClasses)
		n.SetTraining(true)
		return n
	}
	tx := tensor.RandUniform(rng.New(9), 0, 1, tBatch, tIn)
	tLabels := make([]int, tBatch)
	for j := range tLabels {
		tLabels[j] = j % tClasses
	}
	plainNet, maskedNet := buildTimingNet(), buildTimingNet()
	plOpt := opt.NewSGD(plainNet.Params(), 0.05, 0.9, 1e-4)
	mkOpt := opt.NewSGD(maskedNet.Params(), 0.05, 0.9, 1e-4)
	plainEng := tengine.MustCompile(plainNet, tengine.Options{Workers: 1, MaxBatch: tBatch})
	dc := tengine.NewDropConnect(tengine.MustCompile(maskedNet, tengine.Options{Workers: 1, MaxBatch: tBatch}), 0.1, rng.New(19))
	plainEng.ForwardBackward(tx, tLabels) // warm the workspaces
	plOpt.StepAndZero()
	plainRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plainEng.ForwardBackward(tx, tLabels)
			plOpt.StepAndZero()
		}
	})
	dc.Step(tx, tLabels)
	mkOpt.StepAndZero()
	maskedRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dc.Step(tx, tLabels)
			mkOpt.StepAndZero()
		}
	})
	allocs := testing.AllocsPerRun(50, func() {
		dc.Step(tx, tLabels)
		mkOpt.StepAndZero()
	})

	speedup := float64(plainRes.NsPerOp()) / float64(maskedRes.NsPerOp())
	fmt.Printf("benchsmoke: harden plain %d ns/op, masked %d ns/op, ratio %.2fx (min %.2fx), allocs/op %.0f (max %.0f)\n",
		plainRes.NsPerOp(), maskedRes.NsPerOp(), speedup, base.HardenMinSpeedup, allocs, base.HardenMaxAllocsPerOp)
	writeReport(jsonDir, "BENCH_harden.json", Report{
		Workload:      fmt.Sprintf("MLP 784-[64 32]-10, batch-%d drop-connect hardening step at p=0.1", tBatch),
		LegacyNsPerOp: plainRes.NsPerOp(), EngineNsPerOp: maskedRes.NsPerOp(),
		Speedup: speedup, AllocsPerOp: allocs,
		MinSpeedup: base.HardenMinSpeedup, MaxAllocsOp: base.HardenMaxAllocsPerOp,
	})

	ok := true
	if speedup < base.HardenMinSpeedup {
		fmt.Fprintf(os.Stderr, "benchsmoke: FAIL harden masked-step ratio %.2fx below baseline %.2fx\n", speedup, base.HardenMinSpeedup)
		ok = false
	}
	if allocs > base.HardenMaxAllocsPerOp {
		fmt.Fprintf(os.Stderr, "benchsmoke: FAIL harden %.0f allocs/op above baseline %.0f\n", allocs, base.HardenMaxAllocsPerOp)
		ok = false
	}
	return ok
}

// costGate guards the hardware cost accounting layer: metering must be
// numerically invisible (a metered accelerator's analog outputs and readout
// weights bit-identical to an unmetered twin's), the counting hot path must
// allocate nothing in steady state, and a metered inference pass must stay
// within the baseline's bounded factor of an unmetered one.
func costGate(base Baseline, jsonDir string) bool {
	const patterns, in, classes = 16, 16, 6
	cfg := reram.DefaultConfig()
	cfg.TileRows, cfg.TileCols = 16, 16
	cfg.Device.ProgramSigma = 0.03
	build := func() *reram.Accelerator {
		return reram.NewAccelerator(models.MLP(rng.New(7), in, []int{24, 16}, classes), cfg, 55)
	}
	metered, plain := build(), build()
	plain.SetCounter(nil)
	x := tensor.RandUniform(rng.New(8), 0, 1, patterns, in)

	// hard gate first: attaching a counter must not move a single output bit
	// on the analog path or the weight-level readout
	if !metered.Infer(x).Equal(plain.Infer(x)) {
		fmt.Fprintln(os.Stderr, "benchsmoke: FAIL metered analog inference is not bit-identical to unmetered")
		return false
	}
	mp, pp := metered.RefreshReadout().Params(), plain.RefreshReadout().Params()
	for i := range mp {
		if !mp[i].Value.Equal(pp[i].Value) {
			fmt.Fprintf(os.Stderr, "benchsmoke: FAIL metered readout param %s is not bit-identical to unmetered\n", mp[i].Name)
			return false
		}
	}
	if metered.Counter().Snapshot().Total().IsZero() {
		fmt.Fprintln(os.Stderr, "benchsmoke: FAIL metered accelerator charged nothing")
		return false
	}

	// the counting hot path itself: charge + snapshot, zero allocations
	ctr := reram.NewCounter()
	unit := reram.Cost{ComputeCycles: 1, DACConversions: 2, ADCConversions: 3,
		CrossbarReads: 4, CrossbarWrites: 5, EnergyFJ: 6, BufferBytes: 7}
	allocs := testing.AllocsPerRun(100, func() {
		ctr.ChargeClass(reram.ClassMonitor, unit)
		_ = ctr.Snapshot()
	})

	// timing arms: the same analog inference with the meter on and off
	plain.Infer(x) // warm the workspaces so the timed loops are steady state
	metered.Infer(x)
	plainRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plain.Infer(x)
		}
	})
	meteredRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			metered.Infer(x)
		}
	})

	ratio := float64(plainRes.NsPerOp()) / float64(meteredRes.NsPerOp())
	fmt.Printf("benchsmoke: cost unmetered %d ns/op, metered %d ns/op, ratio %.2fx (min %.2fx), charge allocs/op %.0f (max %.0f)\n",
		plainRes.NsPerOp(), meteredRes.NsPerOp(), ratio, base.CostMinRatio, allocs, base.CostMaxAllocsPerOp)
	writeReport(jsonDir, "BENCH_cost.json", Report{
		Workload:      fmt.Sprintf("MLP 16-[24 16]-6 on 16×16 tiles, %d-pattern analog pass, metered vs unmetered", patterns),
		LegacyNsPerOp: plainRes.NsPerOp(), EngineNsPerOp: meteredRes.NsPerOp(),
		Speedup: ratio, AllocsPerOp: allocs,
		MinSpeedup: base.CostMinRatio, MaxAllocsOp: base.CostMaxAllocsPerOp,
	})

	ok := true
	if ratio < base.CostMinRatio {
		fmt.Fprintf(os.Stderr, "benchsmoke: FAIL metering overhead ratio %.2fx below baseline %.2fx\n", ratio, base.CostMinRatio)
		ok = false
	}
	if allocs > base.CostMaxAllocsPerOp {
		fmt.Fprintf(os.Stderr, "benchsmoke: FAIL cost charge path %.0f allocs/op above baseline %.0f\n", allocs, base.CostMaxAllocsPerOp)
		ok = false
	}
	return ok
}

// QuantReport is the emitted multi-precision perf-trajectory record
// (BENCH_quant.json): the three tiers' readout times, the fast arms'
// speedups over the f64 reference, the measured f32 accuracy in row-scaled
// ULPs and the baseline bounds they were gated against.
type QuantReport struct {
	Workload        string  `json:"workload"`
	F64NsPerOp      int64   `json:"f64_ns_per_op"`
	F32NsPerOp      int64   `json:"f32_ns_per_op,omitempty"`
	I8NsPerOp       int64   `json:"i8_ns_per_op,omitempty"`
	F32Speedup      float64 `json:"f32_speedup,omitempty"`
	I8Speedup       float64 `json:"i8_speedup,omitempty"`
	F32MaxScaledULP float64 `json:"f32_max_scaled_ulp,omitempty"`
	F32AllocsPerOp  float64 `json:"f32_allocs_per_op"`
	I8AllocsPerOp   float64 `json:"i8_allocs_per_op"`
	MinF32Speedup   float64 `json:"min_f32_speedup"`
	MinI8Speedup    float64 `json:"min_i8_speedup"`
	ULPBound        float64 `json:"ulp_bound"`
	MaxAllocsOp     float64 `json:"max_allocs_per_op"`
}

// quantI8Oracle is the model-level quantize-then-f64 oracle the int8 tier is
// gated against: dense layers quantize activations and weights with the SAME
// tensor helpers the engine uses, run the integer matmul through the f64
// reference kernel (exact — the values are integers far below 2⁵³) and
// dequantize through the SAME shared expression; every other layer runs its
// ordinary f64 forward. The I8 tier must match this bitwise: the quantized
// kernels change the arithmetic domain, not the arithmetic.
func quantI8Oracle(net *nn.Network, x *tensor.Tensor) *tensor.Tensor {
	cur := x
	for _, l := range net.Layers() {
		d, isDense := l.(*nn.Dense)
		if !isDense {
			cur = l.Forward(cur)
			continue
		}
		n := cur.Dim(0)
		in, out := d.In(), d.Out()
		wqT := make([]int8, in*out)
		sw := make([]float64, out)
		rowSum := make([]int32, out)
		tensor.QuantizeWeightsI8(wqT, sw, rowSum, d.Params()[0].Value.Data(), in, out)
		bias := d.Params()[1].Value.Data()
		xq := make([]int8, in)
		xq64 := make([]float64, n*in)
		rqs := make([]tensor.RowQuantI8, n)
		cd := cur.Data()
		for i := 0; i < n; i++ {
			rqs[i] = tensor.QuantizeRowI8(xq, cd[i*in:(i+1)*in])
			for k, q := range xq {
				xq64[i*in+k] = float64(q)
			}
		}
		wq64 := make([]float64, in*out)
		for j := 0; j < out; j++ {
			for k := 0; k < in; k++ {
				wq64[k*out+j] = float64(wqT[j*in+k])
			}
		}
		acc64 := make([]float64, n*out)
		tensor.MatMulSlices(acc64, xq64, wq64, n, in, out)
		y := tensor.New(n, out)
		yd := y.Data()
		for i := 0; i < n; i++ {
			for j := 0; j < out; j++ {
				yd[i*out+j] = tensor.DequantI8(int32(acc64[i*out+j]), rqs[i], sw[j], bias[j], rowSum[j])
			}
		}
		cur = y
	}
	return cur
}

// maxScaledULP measures the f32 logits against the f64 reference in
// row-scaled ULPs: per row, |f32 − f64| / (2⁻²⁴·max|row|), worst entry over
// the batch. The row scaling makes the metric meaningful under cancellation,
// where the raw per-value ULP distance of a tiny difference explodes.
func maxScaledULP(got, want *tensor.Tensor, rows, cols int) float64 {
	gd, wd := got.Data(), want.Data()
	worst := 0.0
	for i := 0; i < rows; i++ {
		scale := 0.0
		for j := 0; j < cols; j++ {
			scale = math.Max(scale, math.Abs(wd[i*cols+j]))
		}
		if scale == 0 {
			scale = 1
		}
		unit := scale * 0x1p-24
		for j := 0; j < cols; j++ {
			worst = math.Max(worst, math.Abs(gd[i*cols+j]-wd[i*cols+j])/unit)
		}
	}
	return worst
}

// quantGate guards the multi-precision tier: the f64 arm of the precision
// dispatch must stay bit-identical to the legacy serial readout, the f32 arm
// must hold the baseline's row-scaled ULP envelope AND beat the f64 engine by
// the baseline factor, the int8 arm must equal the quantize-then-f64 oracle
// bitwise, and both fast arms must allocate nothing in steady state.
// precision selects which fast arms run ("all", "f32", "i8"); the f64
// reference arm and its bit-identity gate always run.
func quantGate(base Baseline, jsonDir, precision string) bool {
	const patterns, in, classes = 16, 16, 6
	net := models.MLP(rng.New(7), in, []int{24, 16}, classes)
	x := tensor.RandUniform(rng.New(8), 0, 1, patterns, in)

	// hard gate first: the dispatcher's explicit-f64 arm is the reference arm
	// — compiling with Precision set must not move a single bit versus the
	// legacy per-sample path
	f64eng := engine.MustCompile(net, engine.Options{Precision: tensor.F64})
	want := tensor.New(patterns, classes)
	wd := want.Data()
	for s := 0; s < patterns; s++ {
		row := tensor.FromSlice(x.Data()[s*in:(s+1)*in], 1, in)
		probs := nn.Softmax(net.Forward(row))
		copy(wd[s*classes:(s+1)*classes], probs.Data())
	}
	if !f64eng.Probs(x).Equal(want) {
		fmt.Fprintln(os.Stderr, "benchsmoke: FAIL explicit-f64 tier is not bit-identical to the serial path")
		return false
	}
	f64Logits, err := f64eng.ForwardBatch(nil, x)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke: FAIL f64 forward:", err)
		return false
	}
	f64Logits = f64Logits.Clone()
	// timing arms measure the forward pass (logits): that is what the
	// precision tier accelerates — softmax is tier-independent f64
	// post-processing and would only dilute the measured ratio
	f64Res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f64eng.ForwardBatch(nil, x)
		}
	})

	rep := QuantReport{
		Workload:      fmt.Sprintf("MLP 16-[24 16]-6, %d-pattern monitor forward (logits), f64 vs fast tiers", patterns),
		F64NsPerOp:    f64Res.NsPerOp(),
		MinF32Speedup: base.QuantF32MinSpeedup, MinI8Speedup: base.QuantI8MinSpeedup,
		ULPBound: base.QuantF32ULPBound, MaxAllocsOp: base.QuantMaxAllocsPerOp,
	}
	ok := true

	if precision == "all" || precision == "f32" {
		f32eng := engine.MustCompile(net, engine.Options{Precision: tensor.F32})
		got, err := f32eng.ForwardBatch(nil, x)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsmoke: FAIL f32 forward:", err)
			return false
		}
		rep.F32MaxScaledULP = maxScaledULP(got, f64Logits, patterns, classes)
		if rep.F32MaxScaledULP > base.QuantF32ULPBound {
			fmt.Fprintf(os.Stderr, "benchsmoke: FAIL f32 logits off by %.0f row-scaled ULPs, bound %.0f\n",
				rep.F32MaxScaledULP, base.QuantF32ULPBound)
			ok = false
		}
		f32Res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f32eng.ForwardBatch(nil, x)
			}
		})
		rep.F32NsPerOp = f32Res.NsPerOp()
		rep.F32Speedup = float64(f64Res.NsPerOp()) / float64(f32Res.NsPerOp())
		rep.F32AllocsPerOp = testing.AllocsPerRun(50, func() { f32eng.ForwardBatch(nil, x) })
		fmt.Printf("benchsmoke: quant f64 %d ns/op, f32 %d ns/op, speedup %.2fx (min %.2fx), max scaled ULP %.1f (bound %.0f), allocs/op %.0f (max %.0f)\n",
			f64Res.NsPerOp(), f32Res.NsPerOp(), rep.F32Speedup, base.QuantF32MinSpeedup,
			rep.F32MaxScaledULP, base.QuantF32ULPBound, rep.F32AllocsPerOp, base.QuantMaxAllocsPerOp)
		if rep.F32Speedup < base.QuantF32MinSpeedup {
			fmt.Fprintf(os.Stderr, "benchsmoke: FAIL f32 speedup %.2fx below baseline %.2fx\n", rep.F32Speedup, base.QuantF32MinSpeedup)
			ok = false
		}
		if rep.F32AllocsPerOp > base.QuantMaxAllocsPerOp {
			fmt.Fprintf(os.Stderr, "benchsmoke: FAIL f32 %.0f allocs/op above baseline %.0f\n", rep.F32AllocsPerOp, base.QuantMaxAllocsPerOp)
			ok = false
		}
	}

	if precision == "all" || precision == "i8" {
		i8eng := engine.MustCompile(net, engine.Options{Precision: tensor.I8})
		got, err := i8eng.ForwardBatch(nil, x)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsmoke: FAIL i8 forward:", err)
			return false
		}
		if !got.Equal(quantI8Oracle(net, x)) {
			fmt.Fprintln(os.Stderr, "benchsmoke: FAIL i8 tier is not bit-identical to the quantize-then-f64 oracle")
			ok = false
		}
		i8Res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				i8eng.ForwardBatch(nil, x)
			}
		})
		rep.I8NsPerOp = i8Res.NsPerOp()
		rep.I8Speedup = float64(f64Res.NsPerOp()) / float64(i8Res.NsPerOp())
		rep.I8AllocsPerOp = testing.AllocsPerRun(50, func() { i8eng.ForwardBatch(nil, x) })
		fmt.Printf("benchsmoke: quant f64 %d ns/op, i8 %d ns/op, speedup %.2fx (min %.2fx), bitwise vs oracle, allocs/op %.0f (max %.0f)\n",
			f64Res.NsPerOp(), i8Res.NsPerOp(), rep.I8Speedup, base.QuantI8MinSpeedup,
			rep.I8AllocsPerOp, base.QuantMaxAllocsPerOp)
		if rep.I8Speedup < base.QuantI8MinSpeedup {
			fmt.Fprintf(os.Stderr, "benchsmoke: FAIL i8 speedup %.2fx below baseline %.2fx\n", rep.I8Speedup, base.QuantI8MinSpeedup)
			ok = false
		}
		if rep.I8AllocsPerOp > base.QuantMaxAllocsPerOp {
			fmt.Fprintf(os.Stderr, "benchsmoke: FAIL i8 %.0f allocs/op above baseline %.0f\n", rep.I8AllocsPerOp, base.QuantMaxAllocsPerOp)
			ok = false
		}
	}

	if jsonDir != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsmoke: marshal quant report:", err)
			os.Exit(1)
		}
		path := filepath.Join(jsonDir, "BENCH_quant.json")
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchsmoke: write quant report:", err)
			os.Exit(1)
		}
	}
	return ok
}
