// Command monitor demonstrates the end-to-end deployment the paper targets:
// a trained model is programmed onto simulated ReRAM crossbars, the
// accelerator ages in the field (drift + soft errors + late-life stuck-at
// faults), and a concurrent-test monitor tracks its health, estimates
// accuracy from the Fig.-8 calibration curve, and recommends repairs. When
// the monitor asks for reprogramming the demo performs it and shows the
// recovery.
//
// The monitor is armed with C-TP patterns: Table III shows they have the
// highest detection rate, and their peaked golden confidences respond to
// uniform logit shrinkage (the signature of pure resistance drift, where
// every weight decays multiplicatively) — a fault class that O-TP's
// uniform-golden SDC-A criterion is structurally blind to. O-TP remains the
// better accuracy estimator; this demo trades that for drift coverage.
//
// With -soak the command instead runs the randomized fault-injection
// campaign harness against the hardened runtime and reports the robustness
// scorecard, exiting non-zero if the acceptance gate fails.
//
// With -fleet-soak it runs the fleet supervisor crash/restart soak: each
// campaign drives an N-device fleet with journaled supervisor state, kills
// and replays the supervisor mid-campaign (corrupting the journal tail),
// and gates on resume fidelity against an uninterrupted same-seed run.
//
// With -lifetime-soak it runs the three-arm repair-ladder lifetime soak:
// the same seeded fleet campaign with the pluggable escalation ladder
// (scrub → remap → retrain), with the retrain-only control, and
// crash-replayed from the journal — gated on the ladder beating the control
// economically at an equal-or-better fidelity floor with exact decision
// parity across crashes.
//
// With -serve-soak it runs the serving-frontend chaos soak: concurrent
// client traffic with injected slow readouts, mid-request device crashes and
// deadline storms, gated on zero hung requests, zero silent drops, a bounded
// p99 against a no-chaos baseline, and zero leaked goroutines.
//
// With -net-soak it runs the network-tier chaos soak: seeded multi-tenant
// HTTP campaigns against the sharded serving tier over a live loopback
// listener, with device chaos and a mid-campaign graceful shard drain,
// gated on zero hung calls, exact accounting (admitted == terminal typed
// outcomes), post-drain liveness, a bounded p99 and zero leaked goroutines.
// -net-requests sets the per-campaign request count (the full gate runs
// ~10⁶; the smoke default stays CI-sized).
package main

import (
	"flag"
	"fmt"
	"os"

	"reramtest/internal/campaign"
	"reramtest/internal/engine"
	"reramtest/internal/experiments"
	"reramtest/internal/health"
	"reramtest/internal/monitor"
	"reramtest/internal/nn"
	"reramtest/internal/repair"
	"reramtest/internal/reram"
	"reramtest/internal/rng"
	"reramtest/internal/tensor"
)

func main() {
	hoursPerStep := flag.Float64("step", 200, "simulated hours between checks")
	steps := flag.Int("steps", 8, "number of monitoring rounds")
	analog := flag.Bool("analog", false, "run checks through the full DAC/ADC analog path (slower)")
	soak := flag.Bool("soak", false, "run the randomized fault-injection soak campaigns instead of the demo")
	fleetSoak := flag.Bool("fleet-soak", false, "run the fleet supervisor crash/restart soak instead of the demo")
	lifetimeSoak := flag.Bool("lifetime-soak", false, "run the three-arm repair-ladder lifetime soak instead of the demo")
	serveSoak := flag.Bool("serve-soak", false, "run the serving-frontend chaos soak instead of the demo")
	netSoak := flag.Bool("net-soak", false, "run the network-tier chaos soak instead of the demo")
	crashSoak := flag.Bool("crash-soak", false, "run the durable-state crash/disk-fault torture matrix instead of the demo")
	cost := flag.Bool("cost", false, "run a plant-scale workload and print the per-class hardware cost breakdown")
	netRequests := flag.Int("net-requests", 0, "net-soak: requests per campaign (0 = smoke default)")
	campaigns := flag.Int("campaigns", 20, "soak: number of seeded campaigns")
	rounds := flag.Int("rounds", 40, "soak: monitoring rounds per campaign")
	seed := flag.Int64("seed", 1000, "soak: base seed (campaign i uses seed+i)")
	minRecovery := flag.Float64("min-recovery", 0.8, "soak: gate threshold on repair-recovery rate")
	devices := flag.Int("devices", 4, "fleet-soak/serve-soak: accelerators per fleet")
	flag.Parse()

	if *fleetSoak {
		os.Exit(runFleetSoak(*seed, *campaigns, *rounds, *devices))
	}
	if *lifetimeSoak {
		os.Exit(runLifetimeSoak(*seed, *campaigns, *rounds, *devices))
	}
	if *serveSoak {
		os.Exit(runServeSoak(*seed, *campaigns, *devices))
	}
	if *netSoak {
		os.Exit(runNetSoak(*seed, *campaigns, *netRequests))
	}
	if *crashSoak {
		os.Exit(runCrashSoak(*seed, *campaigns, *devices))
	}
	if *cost {
		os.Exit(runCost(*seed, *rounds))
	}
	if *soak {
		os.Exit(runSoak(*seed, *campaigns, *rounds, *minRecovery))
	}

	env, err := experiments.NewEnv(experiments.DefaultScale(), os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "monitor:", err)
		os.Exit(1)
	}
	net := env.LeNet
	patterns := env.PatternsDefault("lenet5", "ctp")

	// calibration curve: confidence distance → accuracy (Fig. 8 data)
	fig8 := env.Fig8()
	dist, acc := fig8.CalibrationCurve("ctp")
	calib := make([]monitor.CalibPoint, len(dist))
	for i := range dist {
		calib[i] = monitor.CalibPoint{Distance: dist[i], Accuracy: acc[i]}
	}

	cfg := reram.DefaultConfig()
	cfg.Device.ProgramSigma = 0.05
	cfg.Device.DriftRate = 0.0003
	cfg.Device.DriftJitter = 0.004
	cfg.Device.SoftErrorRate = 2e-7
	accel := reram.NewAccelerator(net, cfg, 42)
	fmt.Printf("accelerator: %d crossbar tiles of %dx%d, DAC=%d-bit ADC=%d-bit\n",
		accel.TileCount(), cfg.TileRows, cfg.TileCols, cfg.DACBits, cfg.ADCBits)

	mon, err := monitor.New(net, patterns, calib, monitor.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "monitor:", err)
		os.Exit(1)
	}
	fmt.Printf("monitor armed with %d C-TP patterns\n\n", mon.PatternCount())

	// readout refreshes the cached weight-level view and returns the batched
	// inference plan bound to it; the whole demo shares one set of workspaces
	roEng := engine.MustCompile(accel.RefreshReadout(), engine.Options{})
	readout := func() *engine.Engine {
		accel.RefreshReadout()
		return roEng
	}
	infer := func() monitor.Infer {
		if *analog {
			return func(x *tensor.Tensor) *tensor.Tensor {
				return nn.Softmax(accel.Infer(x))
			}
		}
		return func(x *tensor.Tensor) *tensor.Tensor {
			return readout().Probs(x)
		}
	}()

	eval := env.DigitsTest.Head(300)
	for s := 0; s < *steps; s++ {
		rep := mon.Check(infer)
		trueAcc := readout().Accuracy(eval.X, eval.Y, 64)
		fmt.Printf("t=%6.0fh %s | true accuracy %.1f%%\n", accel.Hours(), rep, 100*trueAcc)

		if rep.Status >= monitor.Impaired {
			fmt.Printf("         → executing repair: reprogramming all crossbars\n")
			accel.Reprogram()
			rep = mon.Check(infer)
			fmt.Printf("         after repair: %s\n", rep)
		}
		// age the device; inject a burst of stuck-at faults late in life
		accel.AdvanceTime(*hoursPerStep)
		if s == *steps-3 {
			fmt.Println("         (injecting endurance stuck-at faults: 0.2% SA0, 0.1% SA1)")
			accel.InjectStuckAt(0.002, 0.001)
		}
	}
	slope, summary := mon.Trend()
	fmt.Printf("\ndistance trend: slope=%.5f per round, %s\n", slope, summary)
}

// runCost drives one plant through a serving + monitoring + repair lifetime
// and prints the accumulated hardware cost split by attribution class — the
// telemetry the fleet journals per device and /statsz serves per tier. Rounds
// of serving traffic interleave with concurrent-test checks; stuck-at faults
// land mid-life so a repair episode runs and its measured (not sticker) cost
// shows up under the repair class.
func runCost(seed int64, rounds int) int {
	pcfg := campaign.DefaultPlantConfig()
	p := campaign.NewPlant(seed, pcfg)
	ctr := p.CostCounter()
	mon, err := monitor.New(p.Reference(), p.Patterns(), nil, monitor.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "cost:", err)
		return 1
	}
	rt, err := health.New(mon, campaign.DefaultConfig().Health)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cost:", err)
		return 1
	}
	rt.SetCostCounter(ctr)

	fmt.Printf("cost meter: MLP %d→%v→%d on %d×%d tiles, %d rounds, seed %d\n",
		pcfg.In, pcfg.Hidden, pcfg.Classes, pcfg.Tile, pcfg.Tile, rounds, seed)
	traffic := tensor.RandUniform(rng.New(seed+1), 0, 1, 32, pcfg.In)
	var episodes []health.Episode
	for r := 1; r <= rounds; r++ {
		p.SetRound(r)
		p.BaseInfer()(traffic) // serving traffic (default class)
		rt.Check(p.Infer())    // concurrent test (monitor class)
		p.Accelerator().AdvanceTime(200)
		if r == rounds/2 {
			fmt.Printf("round %d: injecting stuck-at faults (0.8%% SA0, 0.4%% SA1)\n", r)
			p.Accelerator().InjectStuckAt(0.008, 0.004)
		}
		if rt.Confirmed() >= monitor.Impaired {
			ep := rt.Supervise(p.Infer(), p)
			episodes = append(episodes, ep)
			fmt.Printf("round %d: repair episode, %d attempt(s), recovered=%v\n",
				r, len(ep.Attempts), ep.Recovered)
		}
	}

	b := ctr.Snapshot()
	fmt.Printf("\n%-10s %14s %12s %12s %14s %14s %16s %14s\n", "class",
		"cycles", "DAC", "ADC", "xbar reads", "xbar writes", "energy (fJ)", "buffer B")
	row := func(name string, c reram.Cost) {
		fmt.Printf("%-10s %14d %12d %12d %14d %14d %16d %14d\n", name,
			c.ComputeCycles, c.DACConversions, c.ADCConversions,
			c.CrossbarReads, c.CrossbarWrites, c.EnergyFJ, c.BufferBytes)
	}
	row("serving", b.Serving)
	row("monitor", b.Monitor)
	row("repair", b.Repair)
	row("total", b.Total())
	for i, ep := range episodes {
		fmt.Printf("\nepisode %d: sticker %d budget unit(s), measured %d cycles / %d fJ\n",
			i+1, ep.CostSpent, ep.Measured.ComputeCycles, ep.Measured.EnergyFJ)
	}
	if b.Total().IsZero() {
		fmt.Fprintln(os.Stderr, "\ncost: metered workload accumulated zero cost")
		return 1
	}
	return 0
}

// runSoak executes the seeded campaign fleet and prints the scorecard.
// Returns the process exit code: 0 when the acceptance gate holds.
func runSoak(seed int64, campaigns, rounds int, minRecovery float64) int {
	cfg := campaign.DefaultConfig()
	cfg.Rounds = rounds
	fmt.Printf("soak: %d campaigns × %d rounds, base seed %d\n", campaigns, rounds, seed)
	fmt.Printf("plant: MLP %d→%v→%d on %d×%d crossbar tiles\n",
		cfg.Plant.In, cfg.Plant.Hidden, cfg.Plant.Classes, cfg.Plant.Tile, cfg.Plant.Tile)
	results, err := campaign.RunMany(seed, campaigns, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		return 1
	}
	sc := campaign.Score(results, cfg.FidelityBudget)
	fmt.Printf("\n%s\n", sc)
	if err := sc.Gate(minRecovery); err != nil {
		fmt.Fprintln(os.Stderr, "\nGATE FAILED:", err)
		return 1
	}
	fmt.Println("\ngate: PASS")
	return 0
}

// runServeSoak executes the seeded serving chaos campaigns and prints one
// verdict line per campaign. Each campaign runs twice internally — a
// no-chaos baseline to calibrate the latency envelope, then the chaos pass —
// and gates on zero hung requests, zero silent drops, zero untyped errors, a
// bounded p99 and zero leaked goroutines. Returns the process exit code: 0
// when every campaign's gate holds.
func runServeSoak(seed int64, campaigns, devices int) int {
	cfg := campaign.DefaultServeSoakConfig()
	cfg.Devices = devices
	fmt.Printf("serve soak: %d campaigns × %d rounds × %d devices × %d req/round, base seed %d\n",
		campaigns, cfg.Rounds, cfg.Devices, cfg.RequestsPerRound, seed)
	fmt.Printf("chaos: slow %.0f%%@%v, crash %.1f%%, deadline storm every %d rounds @%v\n",
		100*cfg.SlowP, cfg.SlowDelay, 100*cfg.CrashP, cfg.StormEvery, cfg.StormDeadline)
	failed := 0
	for i := 0; i < campaigns; i++ {
		res, err := campaign.RunServeSoak(seed+int64(i), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve soak:", err)
			return 1
		}
		verdict := "PASS"
		fails := res.Failures()
		if len(fails) != 0 {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("seed %d: %s | served %d/%d admitted (degraded %d, hedged %d, retried %d) "+
			"| deadline %d overload %d no-device %d faulted %d | slow %d crash %d storms %d ticks %d "+
			"| p99 %v (baseline %v, bound %v)\n",
			res.Seed, verdict, res.Stats.Served, res.Stats.Admitted, res.Stats.ServedDegraded,
			res.Stats.Hedges, res.Stats.Retries, res.Stats.Deadlines, res.Stats.Overloads,
			res.Stats.NoDevices, res.Stats.FaultFailures, res.InjectedSlows, res.InjectedCrashes,
			res.StormRounds, res.Ticks, res.ChaosP99, res.BaselineP99, res.P99Bound)
		for _, f := range fails {
			fmt.Printf("         gate violation: %s\n", f)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "\nGATE FAILED: %d/%d campaigns violated the serving contract\n", failed, campaigns)
		return 1
	}
	fmt.Println("\ngate: PASS")
	return 0
}

// runNetSoak executes the seeded network-tier chaos campaigns and prints one
// verdict line per campaign. Each campaign stands the sharded tier up behind
// a live loopback listener twice — a clean baseline pass to calibrate the
// latency envelope, then the chaos pass with device injections and a
// graceful shard-0 drain at the midpoint — and gates on zero hung calls,
// exact typed accounting, post-drain liveness, a bounded p99 and zero leaked
// goroutines. Returns the process exit code: 0 when every campaign's gate
// holds.
func runNetSoak(seed int64, campaigns, requests int) int {
	if campaigns < 1 {
		fmt.Fprintln(os.Stderr, "GATE FAILED: nothing exercised (campaigns=0)")
		return 1
	}
	cfg := campaign.DefaultNetSoakConfig()
	if requests > 0 {
		cfg.Load.Requests = requests
	}
	fmt.Printf("net soak: %d campaigns × %d requests over %d shards × %d devices, base seed %d\n",
		campaigns, cfg.Load.Requests, cfg.Shards, cfg.DevicesPerShard, seed)
	fmt.Printf("chaos: slow %.0f%%@%v, crash %.1f%%, deadline storm every %d waves @%dms, shard-0 drains at %.0f%%\n",
		100*cfg.SlowP, cfg.SlowDelay, 100*cfg.CrashP, cfg.Load.StormEvery,
		cfg.Load.StormDeadlineMs, 100*cfg.DrainAfter)
	failed := 0
	for i := 0; i < campaigns; i++ {
		res, err := campaign.RunNetSoak(seed+int64(i), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "net soak:", err)
			return 1
		}
		verdict := "PASS"
		fails := res.Failures()
		if len(fails) != 0 {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("seed %d: %s | ok %d/%d sent (degraded %d, post-drain %d) "+
			"| invalid %d quota %d deadline %d overload %d no-device %d faulted %d "+
			"| retries %d drains %d (auto %d) | %.0f req/s | p99 %v (baseline %v, bound %v)\n",
			res.Seed, verdict, res.Chaos.OK, res.Chaos.Sent, res.Chaos.Degraded, res.PostDrainOK,
			res.Stats.Invalid, res.Stats.QuotaRejected, res.Stats.Deadlines, res.Stats.Overloaded,
			res.Stats.Unavailable, res.Stats.Faulted,
			res.Stats.Retries, res.Stats.Drains, res.Stats.AutoDrains,
			res.Chaos.Throughput, res.ChaosP99, res.BaselineP99, res.P99Bound)
		for _, f := range fails {
			fmt.Printf("         gate violation: %s\n", f)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "\nGATE FAILED: %d/%d campaigns violated the network-tier contract\n", failed, campaigns)
		return 1
	}
	fmt.Println("\ngate: PASS")
	return 0
}

// runLifetimeSoak executes the three-arm repair-ladder lifetime soak for
// each seed: the escalation-ladder fleet campaign (scrub → remap → retrain,
// costs charged per strategy), the retrain-only control in the same cost
// units, and the ladder campaign crash-replayed from its journal. The gate
// demands the ladder beat the control on budget spend and retirements at an
// equal-or-better fidelity floor, zero untyped strategy errors, and exact
// crash/restart parity on the journaled strategy decisions. Returns the
// process exit code: 0 when every seed's gate holds.
func runLifetimeSoak(seed int64, campaigns, rounds, devices int) int {
	cfg := campaign.DefaultLifetimeSoakConfig()
	cfg.Fleet.Rounds = rounds
	cfg.Fleet.Devices = devices
	fmt.Printf("lifetime soak: %d campaigns × %d rounds × %d devices, base seed %d\n",
		campaigns, rounds, devices, seed)
	fmt.Printf("ladder scrub(%d) → remap(%d) → retrain(%d), budget %d units/device; crashes after rounds %v\n",
		repair.CostScrub, repair.CostRemap, repair.CostRetrain,
		cfg.Fleet.Fleet.RepairBudget, cfg.Fleet.CrashAfter)
	failed, replays := 0, 0
	for i := 0; i < campaigns; i++ {
		res, err := campaign.RunLifetimeSoak(seed+int64(i), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lifetime soak:", err)
			return 1
		}
		fmt.Printf("\n%s", res)
		if !res.Pass() {
			failed++
		}
		replays += res.Crashed.Replays
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "\nGATE FAILED: %d/%d campaigns violated the lifetime contract\n", failed, campaigns)
		return 1
	}
	// a soak whose parity arm never crashed (campaigns=0, or rounds short of
	// the crash schedule) proved nothing about decision durability
	if replays == 0 {
		fmt.Fprintln(os.Stderr, "\nGATE FAILED: nothing exercised (no crash/replay cycles ran)")
		return 1
	}
	fmt.Println("\ngate: PASS")
	return 0
}

// runFleetSoak executes the seeded fleet crash-equivalence campaigns and
// prints the fleet scorecard. Each campaign runs twice from the same seed —
// uninterrupted and with mid-campaign supervisor crashes (torn journal
// tails included) — and the gate demands zero divergence between the two.
// Returns the process exit code: 0 when the gate holds.
// runCrashSoak executes the durable-state torture matrix: every
// (crash point × disk fault) cell runs a seeded fleet campaign over the
// snapshot-compacting journal store, kills it, injects the fault, recovers,
// and gates on bit-identical state, bounded WAL size and zero writes that
// were acknowledged and then lost. One matrix runs per campaign seed.
func runCrashSoak(seed int64, campaigns, devices int) int {
	cfg := campaign.DefaultCrashSoakConfig()
	cfg.Devices = devices
	faults := campaign.AllFaults()
	fmt.Printf("crash soak: %d matrices × (%d crash points × %d faults), %d devices × %d rounds, base seed %d\n",
		campaigns, len(cfg.CrashPoints), len(faults), cfg.Devices, cfg.Rounds, seed)
	fmt.Printf("compaction every %d rounds or %d bytes; WAL gated at 2×threshold + one record\n",
		cfg.Fleet.CompactEvery, cfg.CompactBytes)
	exit := 0
	for i := 0; i < campaigns; i++ {
		res, err := campaign.RunCrashSoak(seed+int64(i), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crash soak:", err)
			return 1
		}
		identical, degraded := 0, 0
		for _, c := range res.Cells {
			if c.StateMatch {
				identical++
			}
			if c.Degraded {
				degraded++
			}
		}
		fmt.Printf("seed %d: %d/%d cells recovered bit-identical, %d degraded to memory-only, WAL peak %d of %d bytes\n",
			res.Seed, identical, len(res.Cells), degraded, res.MaxWALBytes, res.WALBound)
		for _, f := range res.Failures() {
			fmt.Fprintln(os.Stderr, "  FAIL:", f)
			exit = 1
		}
	}
	if exit != 0 {
		fmt.Fprintln(os.Stderr, "\nGATE FAILED: durable-state matrix has failing cells")
		return exit
	}
	fmt.Println("\ngate: PASS")
	return 0
}

func runFleetSoak(seed int64, campaigns, rounds, devices int) int {
	cfg := campaign.DefaultFleetSoakConfig()
	cfg.Rounds = rounds
	cfg.Devices = devices
	fmt.Printf("fleet soak: %d campaigns × %d rounds × %d devices, base seed %d\n",
		campaigns, rounds, devices, seed)
	fmt.Printf("crashes after rounds %v (journal tail corrupted), shower at round %d\n",
		cfg.CrashAfter, cfg.ShowerRound)
	pairs := make([]campaign.FleetPairResult, 0, campaigns)
	for i := 0; i < campaigns; i++ {
		pair, err := campaign.RunFleetPair(seed+int64(i), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleet soak:", err)
			return 1
		}
		pairs = append(pairs, pair)
	}
	sc := campaign.ScoreFleet(pairs)
	fmt.Printf("\n%s\n", sc)
	if err := sc.Gate(); err != nil {
		fmt.Fprintln(os.Stderr, "\nGATE FAILED:", err)
		return 1
	}
	fmt.Println("\ngate: PASS")
	return 0
}
