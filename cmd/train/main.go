// Command train builds the two evaluation models (LeNet-5 on SynthDigits,
// ConvNet-7 on SynthObjects), training them if no cached weights exist under
// testdata/weights/ and reporting their test accuracy.
package main

import (
	"flag"
	"fmt"
	"os"

	"reramtest/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "use the paper-scale experiment configuration")
	flag.Parse()
	scale := experiments.DefaultScale()
	if *full {
		scale = experiments.FullScale()
	}
	env, err := experiments.NewEnv(scale, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
	fmt.Println(env.LeNet.Summary())
	fmt.Printf("LeNet-5 test accuracy: %.2f%%\n\n", 100*env.LeNet.Accuracy(env.DigitsTest.X, env.DigitsTest.Y, 64))
	fmt.Println(env.ConvNet.Summary())
	fmt.Printf("ConvNet-7 test accuracy: %.2f%%\n", 100*env.ConvNet.Accuracy(env.ObjectsTest.X, env.ObjectsTest.Y, 64))
}
