// Command gentp generates the concurrent-test pattern sets (C-TP, O-TP and
// the AET baseline) for a chosen model, reports their quality statistics,
// caches them under testdata/patterns/, and optionally dumps PGM
// visualisations of the O-TP "white noise" patterns (the paper's Fig. 2).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"reramtest/internal/detect"
	"reramtest/internal/experiments"
	"reramtest/internal/faults"
	"reramtest/internal/nn"
	"reramtest/internal/tensor"
)

func main() {
	model := flag.String("model", "lenet5", "model: lenet5 or convnet7")
	count := flag.Int("n", 50, "pattern count for C-TP/AET (O-TP always uses one per class)")
	visualize := flag.Bool("visualize", false, "write O-TP patterns as PGM images into testdata/otp-visualization/")
	all := flag.Bool("all", false, "pre-generate every pattern-set size the experiments use, for both models")
	flag.Parse()

	env, err := experiments.NewEnv(experiments.DefaultScale(), os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gentp:", err)
		os.Exit(1)
	}
	if *all {
		pregenerate(env)
		return
	}
	net, pool := env.ModelFor(*model)

	for _, method := range []string{"aet", "ctp", "otp"} {
		m := *count
		if method == "otp" {
			m = pool.Classes
		}
		p := env.Patterns(*model, method, m)
		golden := detect.Capture(net, p)
		// report the sensitivity of the set against a representative fault
		fm := faults.MakeFaulty(net, faults.LogNormal{Sigma: 0.3}, 1)
		o := golden.Observe(fm)
		fmt.Printf("%-4s: %3d patterns, golden confidence flatness (mean std)=%.4f, "+
			"distance at σ=0.3: top=%.4f all=%.4f\n",
			method, p.M(), meanConfStd(net, p.X, pool.Classes), o.TopDist, o.AllDist)

		if *visualize && method == "otp" {
			dir := filepath.Join(experiments.RepoRoot(), "testdata", "otp-visualization")
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "gentp:", err)
				os.Exit(1)
			}
			_, ds := env.ModelFor(*model)
			for i := 0; i < p.M(); i++ {
				path := filepath.Join(dir, fmt.Sprintf("%s-otp-%02d.pgm", *model, i))
				if err := p.WritePGM(path, i, ds.C, ds.H, ds.W); err != nil {
					fmt.Fprintln(os.Stderr, "gentp:", err)
					os.Exit(1)
				}
			}
			fmt.Printf("      wrote %d PGM visualisations to %s\n", p.M(), dir)
		}
	}
}

// pregenerate fills testdata/patterns/ with every set the experiments and
// benches consume, so `go test -bench` never pays generation cost.
func pregenerate(env *experiments.Env) {
	for _, model := range []string{"lenet5", "convnet7"} {
		for _, m := range []int{10, 25, 50, 100, 150, 200} {
			for _, method := range []string{"aet", "ctp"} {
				p := env.Patterns(model, method, m)
				fmt.Printf("cached %s-%s-%d (%d patterns)\n", model, method, m, p.M())
			}
		}
		n := env.OTPPatternCount(model)
		for _, m := range []int{n, 2 * n, 3 * n, 5 * n} {
			p := env.Patterns(model, "otp", m)
			fmt.Printf("cached %s-otp-%d (%d patterns)\n", model, m, p.M())
		}
		p := env.Patterns(model, "plain", env.Scale.Patterns)
		fmt.Printf("cached %s-plain-%d (%d patterns)\n", model, env.Scale.Patterns, p.M())
	}
}

// meanConfStd is the mean per-pattern standard deviation of the clean
// model's confidences — near 1/classes·0 for a well-converged O-TP set.
func meanConfStd(net *nn.Network, x *tensor.Tensor, classes int) float64 {
	probs := nn.Softmax(net.Forward(x))
	pd := probs.Data()
	m := probs.Dim(0)
	sum := 0.0
	for i := 0; i < m; i++ {
		sum += tensor.FromSlice(pd[i*classes:(i+1)*classes], classes).Std()
	}
	return sum / float64(m)
}
