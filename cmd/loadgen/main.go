// Command loadgen drives seeded multi-tenant request campaigns against a
// live serving tier (cmd/served or any endpoint speaking the /v1/infer
// protocol). The schedule — tenant mix, batch shapes, priorities, fault
// storms — is a pure function of the seed, so a campaign is replayable
// byte-for-byte; at -requests 1000000 it is the full-scale arm of the
// million-request chaos gate.
//
//	loadgen -target http://127.0.0.1:8080 -requests 1000000 -concurrency 64
//
// Exit status is 0 only when the run satisfies the client-observable half
// of the serving contract: zero hung requests (nothing outlived its
// deadline plus grace), zero transport failures and zero untyped outcomes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"reramtest/internal/loadgen"
)

func main() {
	target := flag.String("target", "http://127.0.0.1:8080", "serving tier base URL")
	requests := flag.Int("requests", 10000, "campaign size")
	concurrency := flag.Int("concurrency", 32, "in-flight request fan-out")
	seed := flag.Int64("seed", 1, "campaign seed (same seed = same schedule)")
	inDim := flag.Int("in-dim", 16, "model input width (must match the tier)")
	deadlineMs := flag.Int("deadline-ms", 1000, "per-request deadline")
	stormEvery := flag.Int("storm-every", 0, "every Nth wave is a deadline storm (0 disables)")
	stormMs := flag.Int("storm-deadline-ms", 2, "storm-wave deadline")
	grace := flag.Duration("grace", 250*time.Millisecond, "hung-request slack past the deadline")
	tenants := flag.String("tenants", "alpha:3,beta:2,gamma:1", "tenant mix as name:weight[:monitorP],…")
	monitorP := flag.Float64("monitor-p", 0.05, "default monitor-priority fraction per tenant")
	flag.Parse()

	mix, err := parseTenants(*tenants, *monitorP)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	cfg := loadgen.Config{
		Tenants: mix, Requests: *requests, Concurrency: *concurrency,
		InDim: *inDim, DeadlineMs: *deadlineMs,
		StormEvery: *stormEvery, StormDeadlineMs: *stormMs, Grace: *grace,
	}

	tgt := loadgen.NewHTTPTarget(*target, nil)
	defer tgt.CloseIdle()
	fmt.Printf("loadgen: %d requests → %s, %d in flight, seed %d, %d tenant(s)\n",
		*requests, *target, *concurrency, *seed, len(mix))

	lastMark := 0
	rep, err := loadgen.Run(context.Background(), *seed, tgt, cfg, func(done int) {
		if done-lastMark >= *requests/10 && *requests >= 1000 {
			lastMark = done
			fmt.Printf("  %d/%d\n", done, *requests)
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}

	fmt.Println(rep)
	if rep.Hung > 0 || rep.Transport > 0 || rep.Untyped > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: contract violated — hung %d, transport %d, untyped %d\n",
			rep.Hung, rep.Transport, rep.Untyped)
		os.Exit(1)
	}
}

// parseTenants decodes "name:weight[:monitorP]" specs.
func parseTenants(spec string, defaultMonitorP float64) ([]loadgen.TenantSpec, error) {
	var out []loadgen.TenantSpec
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		t := loadgen.TenantSpec{Name: fields[0], Weight: 1, MonitorP: defaultMonitorP}
		if t.Name == "" {
			return nil, fmt.Errorf("empty tenant name in %q", spec)
		}
		if len(fields) > 1 {
			if _, err := fmt.Sscanf(fields[1], "%g", &t.Weight); err != nil {
				return nil, fmt.Errorf("bad weight %q for tenant %s", fields[1], t.Name)
			}
		}
		if len(fields) > 2 {
			if _, err := fmt.Sscanf(fields[2], "%g", &t.MonitorP); err != nil {
				return nil, fmt.Errorf("bad monitorP %q for tenant %s", fields[2], t.Name)
			}
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tenants in %q", spec)
	}
	return out, nil
}
