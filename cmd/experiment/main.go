// Command experiment regenerates any table or figure of the paper's
// evaluation section:
//
//	experiment -id table1     # Table I: LeNet-5 accuracy vs σ
//	experiment -id table3     # Table III: average detection rates
//	experiment -id fig4       # Fig. 4: detection rate vs σ (SDC-T/SDC-A)
//	experiment -id all        # everything
//
// Pass -full (or set REPRO_FULL=1) for the paper-scale fault-model counts.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"reramtest/internal/experiments"
)

type renderer interface{ Render() string }

func main() {
	id := flag.String("id", "all", "experiment id: table1..table4, fig3..fig8, ablation-{alpha,pool,adc,refsigma}, all, or ablations")
	full := flag.Bool("full", false, "use the paper-scale configuration (100 fault models per setting)")
	verbose := flag.Bool("v", false, "log progress to stderr")
	flag.Parse()

	scale := experiments.DefaultScale()
	if *full {
		scale = experiments.FullScale()
	}
	var logw io.Writer = io.Discard
	if *verbose {
		logw = os.Stderr
	}
	env, err := experiments.NewEnv(scale, logw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiment:", err)
		os.Exit(1)
	}

	runners := map[string]func() renderer{
		"table1": func() renderer { return env.Table1() },
		"table2": func() renderer { return env.Table2() },
		"table3": func() renderer { return env.Table3() },
		"table4": func() renderer { return env.Table4() },
		"fig3":   func() renderer { return env.Fig3() },
		"fig4":   func() renderer { return env.Fig4() },
		"fig5":   func() renderer { return env.Fig5() },
		"fig6":   func() renderer { return env.Fig6() },
		"fig7":   func() renderer { return env.Fig7() },
		"fig8":   func() renderer { return env.Fig8() },
		// ablations beyond the paper's published evaluation
		"ablation-alpha":    func() renderer { return env.AblationOTPAlpha() },
		"ablation-pool":     func() renderer { return env.AblationCTPPool() },
		"ablation-adc":      func() renderer { return env.AblationADCBits() },
		"ablation-refsigma": func() renderer { return env.AblationOTPRefSigma() },
	}
	order := []string{"table1", "table2", "table3", "table4", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8"}
	ablations := []string{"ablation-alpha", "ablation-pool", "ablation-adc", "ablation-refsigma"}

	ids := []string{strings.ToLower(*id)}
	switch ids[0] {
	case "all":
		ids = order
	case "ablations":
		ids = ablations
	}
	for _, one := range ids {
		run, ok := runners[one]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiment: unknown id %q (want table1..table4, fig3..fig8, ablation-*, all, ablations)\n", one)
			os.Exit(2)
		}
		fmt.Printf("=== %s ===\n", strings.ToUpper(one))
		fmt.Println(run().Render())
	}
}
