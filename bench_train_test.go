package reramtest_test

import (
	"testing"

	"reramtest/internal/dataset"
	"reramtest/internal/faults"
	"reramtest/internal/models"
	"reramtest/internal/nn"
	"reramtest/internal/opt"
	"reramtest/internal/rng"
	"reramtest/internal/tengine"
	"reramtest/internal/tensor"
)

// trainFixture builds the training workload both arms share: a fresh MLP on
// a synthetic digit set (no weight cache required — untrained weights cost
// the same to differentiate as trained ones).
func trainFixture() (*nn.Network, *dataset.Dataset) {
	train := dataset.SynthDigits(31, dataset.DefaultDigitsConfig(128))
	net := models.MLP(rng.New(13), train.SampleDim(), []int{64, 32}, train.Classes)
	net.SetTraining(true)
	return net, train
}

// BenchmarkTrainStepLegacy is the pre-engine training step: layer-wise batch
// forward, cross-entropy with a fresh gradient tensor, ZeroGrad, layer-wise
// backward, momentum SGD step.
func BenchmarkTrainStepLegacy(b *testing.B) {
	net, train := trainFixture()
	sgd := opt.NewSGD(net.Params(), 0.05, 0.9, 1e-4)
	x := tensor.FromSlice(train.X.Data()[:32*train.SampleDim()], 32, train.SampleDim())
	y := train.Y[:32]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logits := net.Forward(x)
		_, grad := nn.CrossEntropy(logits, y)
		net.ZeroGrad()
		net.Backward(grad)
		sgd.Step()
	}
}

// BenchmarkTrainStepEngine is the same step through the compiled training
// plan with the fused allocation-free optimizer update.
func BenchmarkTrainStepEngine(b *testing.B) {
	net, train := trainFixture()
	sgd := opt.NewSGD(net.Params(), 0.05, 0.9, 1e-4)
	eng := tengine.MustCompile(net, tengine.Options{Workers: 1, MaxBatch: 32})
	x := tensor.FromSlice(train.X.Data()[:32*train.SampleDim()], 32, train.SampleDim())
	y := train.Y[:32]
	eng.ForwardBackward(x, y)
	sgd.StepAndZero()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.ForwardBackward(x, y)
		sgd.StepAndZero()
	}
}

// TestTrainStepAllocFree pins the steady-state zero-allocation contract of
// the full training step (engine compute + fused optimizer).
func TestTrainStepAllocFree(t *testing.T) {
	net, train := trainFixture()
	sgd := opt.NewSGD(net.Params(), 0.05, 0.9, 1e-4)
	eng := tengine.MustCompile(net, tengine.Options{Workers: 1, MaxBatch: 32})
	x := tensor.FromSlice(train.X.Data()[:32*train.SampleDim()], 32, train.SampleDim())
	y := train.Y[:32]
	eng.ForwardBackward(x, y)
	sgd.StepAndZero()
	if a := testing.AllocsPerRun(10, func() {
		eng.ForwardBackward(x, y)
		sgd.StepAndZero()
	}); a != 0 {
		t.Errorf("training step allocates %.1f objects/op, want 0", a)
	}
}

// BenchmarkRetrainEpochLegacy reproduces the pre-engine RetrainAround inner
// loop for one epoch: slice-of-batches allocation plus per-layer backprop.
func BenchmarkRetrainEpochLegacy(b *testing.B) {
	net, train := trainFixture()
	sgd := opt.NewSGD(net.Params(), 0.01, 0.9, 0)
	r := rng.New(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, batch := range train.Batches(32, r) {
			logits := net.Forward(batch.X)
			_, grad := nn.CrossEntropy(logits, batch.Y)
			net.ZeroGrad()
			net.Backward(grad)
			sgd.Step()
		}
	}
}

// BenchmarkRetrainEpochEngine is the same epoch through the compiled plan and
// the reusable batch iterator.
func BenchmarkRetrainEpochEngine(b *testing.B) {
	net, train := trainFixture()
	sgd := opt.NewSGD(net.Params(), 0.01, 0.9, 0)
	eng := tengine.MustCompile(net, tengine.Options{Workers: 1, MaxBatch: 32})
	it := train.BatchIterator(32)
	r := rng.New(3)
	eng.ForwardBackward(tensor.FromSlice(train.X.Data()[:32*train.SampleDim()], 32, train.SampleDim()), train.Y[:32])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Reset(r)
		for {
			bx, by, ok := it.Next()
			if !ok {
				break
			}
			eng.ForwardBackward(bx, by)
			sgd.StepAndZero()
		}
	}
}

// otpNets builds the clean/faulty pair for the O-TP synthesis benchmarks.
func otpNets() (*nn.Network, *nn.Network) {
	clean := models.MLP(rng.New(13), 64, []int{48}, 10)
	faulty := faults.MakeFaulty(clean, faults.LogNormal{Sigma: 0.4}, 11)
	return clean, faulty
}

// BenchmarkOTPSynthesisLegacy runs Algorithm 1's optimization loop (20
// iterations, convergence thresholds disabled) through the pre-engine path.
func BenchmarkOTPSynthesisLegacy(b *testing.B) {
	clean, faulty := otpNets()
	soft := nn.UniformLabels(10, 10)
	labels := make([]int, 10)
	for j := range labels {
		labels[j] = j
	}
	hard := nn.OneHot(labels, 10)
	x := tensor.RandUniform(rng.New(5), 0, 1, 10, 64)
	const lr, alpha = 0.5, 0.5
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for iter := 0; iter < 20; iter++ {
			zClean := clean.Forward(x)
			_, g1 := nn.SoftCrossEntropy(zClean, soft)
			clean.ZeroGrad()
			gx1 := clean.Backward(g1)
			zFault := faulty.Forward(x)
			_, g2 := nn.SoftCrossEntropy(zFault, hard)
			faulty.ZeroGrad()
			gx2 := faulty.Backward(g2)
			xd, d1, d2 := x.Data(), gx1.Data(), gx2.Data()
			for i := range xd {
				xd[i] -= lr * (alpha*d1[i] + (1-alpha)*d2[i])
				if xd[i] < 0 {
					xd[i] = 0
				} else if xd[i] > 1 {
					xd[i] = 1
				}
			}
		}
	}
}

// BenchmarkOTPSynthesisEngine runs the same 20-iteration loop through two
// compiled plans with input-gradient taps — the path GenerateOTP now uses.
func BenchmarkOTPSynthesisEngine(b *testing.B) {
	clean, faulty := otpNets()
	ce := tengine.MustCompile(clean, tengine.Options{Workers: 1, MaxBatch: 10, InputGrad: true, NoParamGrads: true})
	fe := tengine.MustCompile(faulty, tengine.Options{Workers: 1, MaxBatch: 10, InputGrad: true, NoParamGrads: true})
	soft := nn.UniformLabels(10, 10)
	labels := make([]int, 10)
	for j := range labels {
		labels[j] = j
	}
	hard := nn.OneHot(labels, 10)
	x := tensor.RandUniform(rng.New(5), 0, 1, 10, 64)
	const lr, alpha = 0.5, 0.5
	ce.ForwardBackwardSoft(x, soft)
	fe.ForwardBackwardSoft(x, hard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for iter := 0; iter < 20; iter++ {
			ce.ForwardBackwardSoft(x, soft)
			fe.ForwardBackwardSoft(x, hard)
			xd, d1, d2 := x.Data(), ce.InputGrad().Data(), fe.InputGrad().Data()
			for i := range xd {
				xd[i] -= lr * (alpha*d1[i] + (1-alpha)*d2[i])
				if xd[i] < 0 {
					xd[i] = 0
				} else if xd[i] > 1 {
					xd[i] = 1
				}
			}
		}
	}
}
