module reramtest

go 1.22
